package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// FlightDump is the post-mortem document written by the flight recorder:
// this rank's recent telemetry intervals plus the lifecycle event log, and —
// when rank 0 dumps on behalf of a dead peer — the whole cluster model, so
// the dead rank's final streamed intervals survive its process.
type FlightDump struct {
	Schema   string       `json:"schema"` // "gottg.flight/v1"
	Rank     int          `json:"rank"`
	Reason   string       `json:"reason"`
	DumpedAt int64        `json:"dumped_at_ns"`
	Events   []Event      `json:"events,omitempty"`
	Local    RankView     `json:"local"`
	Cluster  *ClusterView `json:"cluster,omitempty"`
}

// Recorder is the per-rank flight recorder: a handle on the local sampler's
// ring plus its own bounded lifecycle-event log. Dump writes the JSON
// post-mortem; each (rank, reason) pair dumps at most once per run.
type Recorder struct {
	mu      sync.Mutex
	rank    int
	dir     string
	sampler *Sampler
	agg     *Aggregator // rank 0 only: cluster model included in dumps
	events  []Event
	evCap   int
	dumped  map[string]bool
	lastOut string
}

// NewRecorder builds a recorder writing dumps into dir (created on first
// dump; "." when empty).
func NewRecorder(rank int, dir string, s *Sampler, agg *Aggregator) *Recorder {
	if dir == "" {
		dir = "."
	}
	return &Recorder{rank: rank, dir: dir, sampler: s, agg: agg, evCap: 512, dumped: map[string]bool{}}
}

// Note appends a lifecycle event to the recorder's bounded log.
func (rec *Recorder) Note(e Event) {
	rec.mu.Lock()
	if len(rec.events) >= rec.evCap {
		copy(rec.events, rec.events[1:])
		rec.events = rec.events[:rec.evCap-1]
	}
	rec.events = append(rec.events, e)
	rec.mu.Unlock()
}

// Dump writes the post-mortem file and returns its path. A reason that has
// already been dumped by this recorder is a no-op returning the prior path:
// lifecycle hooks can fire more than once (e.g. several rank deaths), and
// each occurrence of the same reason would only rewrite near-identical
// state. Reasons embed the subject rank ("rank_dead_2") where multiplicity
// matters.
func (rec *Recorder) Dump(reason string) (string, error) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.dumped[reason] {
		return rec.lastOut, nil
	}
	d := FlightDump{
		Schema:   "gottg.flight/v1",
		Rank:     rec.rank,
		Reason:   reason,
		DumpedAt: time.Now().UnixNano(),
		Events:   append([]Event(nil), rec.events...),
	}
	if rec.sampler != nil {
		d.Local = rec.sampler.View()
	} else {
		d.Local = RankView{Rank: rec.rank}
	}
	if rec.agg != nil {
		if cv, ok := rec.agg.ClusterJSON().(ClusterView); ok {
			d.Cluster = &cv
		}
	}
	if err := os.MkdirAll(rec.dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(rec.dir, fmt.Sprintf("flight-rank%d-%s-%d.json", rec.rank, reason, os.Getpid()))
	buf, err := json.MarshalIndent(d, "", " ")
	if err != nil {
		return "", err
	}
	// Write-then-rename so watchers (the CI smoke test polls the directory)
	// never observe a torn file.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", err
	}
	rec.dumped[reason] = true
	rec.lastOut = path
	return path, nil
}
