package telemetry

import (
	"sort"
	"sync"

	"gottg/internal/metrics"
)

// Aggregator is rank 0's merged cluster model: one interval series per rank
// (local samples arrive via the sampler's sink fast path, remote ones as
// decoded frames), the online anomaly detectors, and a bounded event log.
// All surfaces (ClusterJSON, RankSnapshots, flight dumps) read the same
// model under one mutex; ingest is O(columns) per frame.
type Aggregator struct {
	mu     sync.Mutex
	size   int
	window int
	ranks  map[int]*rankSeries
	epoch  uint64 // highest membership epoch seen on any frame
	dead   map[int]bool

	det    *detectors
	events []Event
	evCap  int
	evTot  map[string]uint64
}

// rankSeries is one rank's schema and cumulative ring as seen by rank 0.
type rankSeries struct {
	schema  schema
	ring    *ring
	lastSeq uint64
	lastTs  int64
	scratch []float64
}

// NewAggregator builds the cluster model for a world of size ranks. window
// bounds each rank's retained intervals; cfg tunes the detectors (zero
// value = defaults).
func NewAggregator(size, window int, cfg DetectorConfig) *Aggregator {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Aggregator{
		size:   size,
		window: window,
		ranks:  map[int]*rankSeries{},
		dead:   map[int]bool{},
		det:    newDetectors(cfg),
		evCap:  256,
		evTot:  map[string]uint64{},
	}
}

// HandleFrame is the comm-layer telemetry handler: decode and ingest.
// Undecodable payloads are dropped (the stream is best-effort and frames
// may be mangled by injected faults).
func (a *Aggregator) HandleFrame(src int, payload []byte) {
	f, err := decodeFrame(payload)
	if err != nil {
		return
	}
	// Trust the envelope's source rank over the frame body: a frame is
	// accepted only into the series of the rank that transmitted it.
	a.Ingest(src, f.seq, f.epoch, f.tsNs, f.cols, f.vals)
}

// Ingest accepts one interval for rank r. Duplicate and stale sequences are
// dropped (the unsequenced wire path may duplicate frames under faults);
// gaps are fine because values are cumulative. vals is copied.
func (a *Aggregator) Ingest(r int, seq, epoch uint64, tsNs int64, cols []Col, vals []float64) {
	a.mu.Lock()
	rs := a.ranks[r]
	if rs == nil {
		rs = &rankSeries{ring: newRing(a.window)}
		a.ranks[r] = rs
	}
	if seq <= rs.lastSeq {
		a.mu.Unlock()
		return
	}
	rs.lastSeq = seq
	rs.lastTs = tsNs
	if epoch > a.epoch {
		a.epoch = epoch
	}
	// Project the frame's columns onto the rank's append-only schema so the
	// value layout is stable across frames even if the sender discovered
	// metrics in a different order than we first saw.
	if cap(rs.scratch) < len(rs.schema.cols) {
		rs.scratch = make([]float64, len(rs.schema.cols))
	}
	rs.scratch = rs.scratch[:len(rs.schema.cols)]
	for i := range rs.scratch {
		rs.scratch[i] = 0
	}
	for i, c := range cols {
		idx := rs.schema.ensure(c)
		if idx >= len(rs.scratch) {
			rs.scratch = append(rs.scratch, make([]float64, idx+1-len(rs.scratch))...)
		}
		rs.scratch[idx] = vals[i]
	}
	rs.ring.push(seq, tsNs, rs.scratch)
	evs := a.det.observe(a.liveRanksLocked(), r, rs, tsNs)
	for _, e := range evs {
		a.noteLocked(e)
	}
	a.mu.Unlock()
}

// liveRanksLocked returns the series of every rank not marked dead.
func (a *Aggregator) liveRanksLocked() map[int]*rankSeries {
	live := make(map[int]*rankSeries, len(a.ranks))
	for r, rs := range a.ranks {
		if !a.dead[r] {
			live[r] = rs
		}
	}
	return live
}

// MarkDead records that rank r's failure was confirmed (membership epoch e).
func (a *Aggregator) MarkDead(r int, e uint64) {
	a.mu.Lock()
	a.dead[r] = true
	if e > a.epoch {
		a.epoch = e
	}
	a.mu.Unlock()
}

// Note appends a lifecycle event to the bounded cluster event log.
func (a *Aggregator) Note(e Event) {
	a.mu.Lock()
	a.noteLocked(e)
	a.mu.Unlock()
}

func (a *Aggregator) noteLocked(e Event) {
	a.evTot[e.Kind]++
	if len(a.events) >= a.evCap {
		copy(a.events, a.events[1:])
		a.events = a.events[:a.evCap-1]
	}
	a.events = append(a.events, e)
}

// Events returns a copy of the retained event log.
func (a *Aggregator) Events() []Event {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Event, len(a.events))
	copy(out, a.events)
	return out
}

// EventCount returns how many events of kind have been raised in total.
func (a *Aggregator) EventCount(kind string) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.evTot[kind]
}

// ClusterView is the /cluster.json document: the merged cluster model with
// per-rank interval series, detector events, and summed totals.
type ClusterView struct {
	Schema      string             `json:"schema"` // "gottg.cluster/v1"
	Size        int                `json:"size"`
	Epoch       uint64             `json:"epoch"`
	EventCounts map[string]uint64  `json:"event_counts,omitempty"`
	Events      []Event            `json:"events,omitempty"`
	PerRank     []RankView         `json:"per_rank"`
	Merged      map[string]float64 `json:"merged,omitempty"`
}

// RankView is one rank's interval series rendered as deltas.
type RankView struct {
	Rank        int                `json:"rank"`
	Dead        bool               `json:"dead,omitempty"`
	LastSeq     uint64             `json:"last_seq"`
	LastTsNs    int64              `json:"last_ts_ns"`
	LastHeardNs int64              `json:"last_heard_ns,omitempty"`
	Totals      map[string]float64 `json:"totals,omitempty"`
	Intervals   []IntervalView     `json:"intervals,omitempty"`
}

// IntervalView is one sampling interval: per-column deltas for counters,
// levels for gauges.
type IntervalView struct {
	Seq    uint64             `json:"seq"`
	TsNs   int64              `json:"ts_ns"`
	DtNs   int64              `json:"dt_ns"`
	Deltas map[string]float64 `json:"deltas,omitempty"`
}

// ClusterJSON renders the full cluster model. The per-rank list is sorted
// by rank and includes ranks that have not reported yet (empty series), so
// coverage assertions can distinguish "silent" from "absent".
func (a *Aggregator) ClusterJSON() any {
	a.mu.Lock()
	defer a.mu.Unlock()
	cv := ClusterView{
		Schema:      "gottg.cluster/v1",
		Size:        a.size,
		Epoch:       a.epoch,
		EventCounts: map[string]uint64{},
		Merged:      map[string]float64{},
	}
	for k, v := range a.evTot {
		cv.EventCounts[k] = v
	}
	cv.Events = make([]Event, len(a.events))
	copy(cv.Events, a.events)
	for r := 0; r < a.size; r++ {
		rs := a.ranks[r]
		var rv RankView
		if rs == nil {
			rv = RankView{Rank: r, Dead: a.dead[r]}
		} else {
			rv = renderSeries(r, &rs.schema, rs.ring, a.dead[r], rs.lastTs)
		}
		cv.PerRank = append(cv.PerRank, rv)
		for name, v := range rv.Totals {
			cv.Merged[name] += v
		}
	}
	return cv
}

// View renders one rank's series (zero RankView when unseen).
func (a *Aggregator) View(r int) RankView {
	a.mu.Lock()
	defer a.mu.Unlock()
	rs := a.ranks[r]
	if rs == nil {
		return RankView{Rank: r, Dead: a.dead[r]}
	}
	return renderSeries(r, &rs.schema, rs.ring, a.dead[r], rs.lastTs)
}

// RankSnapshots reconstructs one metrics.Snapshot per reporting rank from
// the latest cumulative interval, for rank-labelled Prometheus exposition.
// Histogram columns surface as plain "<name>.count"/"<name>.sum" counters
// (bucket vectors never cross the wire). Detector event totals are folded
// into rank 0's snapshot as telemetry.events.<kind> counters.
func (a *Aggregator) RankSnapshots() map[int]metrics.Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[int]metrics.Snapshot, len(a.ranks))
	for r, rs := range a.ranks {
		last := rs.ring.last()
		if last == nil {
			continue
		}
		snap := metrics.Snapshot{
			Counters: map[string]uint64{},
			Gauges:   map[string]int64{},
		}
		for i, c := range rs.schema.cols {
			if i >= len(last.vals) {
				break
			}
			switch c.Kind {
			case KindGauge:
				snap.Gauges[c.Name] = int64(last.vals[i])
			default:
				snap.Counters[c.Name] = uint64(last.vals[i])
			}
		}
		if r == 0 {
			kinds := make([]string, 0, len(a.evTot))
			for k := range a.evTot {
				kinds = append(kinds, k)
			}
			sort.Strings(kinds)
			for _, k := range kinds {
				snap.Counters["telemetry.events."+k] = a.evTot[k]
			}
		}
		out[r] = snap
	}
	return out
}

// Coverage returns how many ranks have reported at least one interval.
func (a *Aggregator) Coverage() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, rs := range a.ranks {
		if rs.ring.n > 0 {
			n++
		}
	}
	return n
}
