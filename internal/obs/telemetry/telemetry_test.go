package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gottg/internal/metrics"
)

func TestFrameRoundTrip(t *testing.T) {
	cols := []Col{
		{Name: "rt.task.executed", Kind: KindCounter},
		{Name: "termdet.pending", Kind: KindGauge},
		{Name: "rt.task.ns.sum", Kind: KindCounter},
	}
	vals := []float64{1234, -5, 9.75e9}
	buf := encodeFrame(nil, 3, 42, 7, 1699999999000, cols, vals)
	f, err := decodeFrame(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if f.rank != 3 || f.seq != 42 || f.epoch != 7 || f.tsNs != 1699999999000 {
		t.Fatalf("header mismatch: %+v", f)
	}
	if len(f.cols) != len(cols) {
		t.Fatalf("got %d cols, want %d", len(f.cols), len(cols))
	}
	for i := range cols {
		if f.cols[i].Name != cols[i].Name || f.cols[i].Kind != cols[i].Kind {
			t.Fatalf("col %d: got %+v want %+v", i, f.cols[i], cols[i])
		}
		if f.vals[i] != vals[i] {
			t.Fatalf("val %d: got %v want %v", i, f.vals[i], vals[i])
		}
	}
}

func TestFrameDecodeRejectsCorruption(t *testing.T) {
	cols := []Col{{Name: "a", Kind: KindCounter}}
	buf := encodeFrame(nil, 1, 1, 0, 0, cols, []float64{1})
	// Every strict prefix must fail cleanly, never panic.
	for n := 0; n < len(buf); n++ {
		if _, err := decodeFrame(buf[:n]); err == nil {
			t.Fatalf("prefix of %d bytes decoded without error", n)
		}
	}
	bad := append([]byte(nil), buf...)
	bad[0] = 99 // unknown version
	if _, err := decodeFrame(bad); err == nil {
		t.Fatal("unknown version accepted")
	}
}

// fakeSource builds a snapshot function over mutable counters.
type fakeSource struct {
	mu sync.Mutex
	c  map[string]uint64
	g  map[string]int64
	h  map[string]metrics.HistSnapshot
}

func (f *fakeSource) snap() metrics.Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := metrics.Snapshot{Counters: map[string]uint64{}, Gauges: map[string]int64{}, Histograms: map[string]metrics.HistSnapshot{}}
	for k, v := range f.c {
		s.Counters[k] = v
	}
	for k, v := range f.g {
		s.Gauges[k] = v
	}
	for k, v := range f.h {
		s.Histograms[k] = v
	}
	return s
}

func (f *fakeSource) set(name string, v uint64) {
	f.mu.Lock()
	f.c[name] = v
	f.mu.Unlock()
}

func newFakeSource() *fakeSource {
	return &fakeSource{c: map[string]uint64{}, g: map[string]int64{}, h: map[string]metrics.HistSnapshot{}}
}

func TestSamplerDeltasAndHistogramFlattening(t *testing.T) {
	src := newFakeSource()
	src.set("rt.task.executed", 100)
	src.g["termdet.pending"] = 7
	src.h["rt.task.ns"] = metrics.HistSnapshot{Count: 10, Sum: 5000}
	s := NewSampler(0, src.snap, time.Hour, 8, nil, nil)
	s.SampleNow()
	src.set("rt.task.executed", 160)
	src.g["termdet.pending"] = 3
	src.h["rt.task.ns"] = metrics.HistSnapshot{Count: 25, Sum: 9000}
	s.SampleNow()

	v := s.View()
	if v.LastSeq != 2 {
		t.Fatalf("LastSeq = %d, want 2", v.LastSeq)
	}
	if len(v.Intervals) != 1 {
		t.Fatalf("got %d intervals, want 1", len(v.Intervals))
	}
	iv := v.Intervals[0]
	if iv.Deltas["rt.task.executed"] != 60 {
		t.Errorf("counter delta = %v, want 60", iv.Deltas["rt.task.executed"])
	}
	if iv.Deltas["termdet.pending"] != 3 {
		t.Errorf("gauge level = %v, want 3", iv.Deltas["termdet.pending"])
	}
	if iv.Deltas["rt.task.ns.count"] != 15 || iv.Deltas["rt.task.ns.sum"] != 4000 {
		t.Errorf("histogram deltas = %v/%v, want 15/4000",
			iv.Deltas["rt.task.ns.count"], iv.Deltas["rt.task.ns.sum"])
	}
	if v.Totals["rt.task.executed"] != 160 {
		t.Errorf("total = %v, want 160", v.Totals["rt.task.executed"])
	}
}

func TestSamplerSteadyStateDoesNotGrow(t *testing.T) {
	src := newFakeSource()
	src.set("a", 1)
	src.set("b", 2)
	s := NewSampler(0, src.snap, time.Hour, 4, nil, nil)
	for i := 0; i < 100; i++ {
		src.set("a", uint64(i))
		s.SampleNow()
	}
	if got := s.Samples(); got != 100 {
		t.Fatalf("Samples = %d, want 100", got)
	}
	v := s.View()
	if len(v.Intervals) != 3 { // window 4 → 3 deltas
		t.Fatalf("ring retained %d intervals, want 3", len(v.Intervals))
	}
	if v.LastSeq != 100 {
		t.Fatalf("LastSeq = %d, want 100", v.LastSeq)
	}
}

func TestRingWrapOrdering(t *testing.T) {
	r := newRing(4)
	for i := 1; i <= 10; i++ {
		r.pushNext(int64(i*100), []float64{float64(i)})
	}
	if r.n != 4 {
		t.Fatalf("n = %d, want 4", r.n)
	}
	for i := 0; i < 4; i++ {
		want := uint64(7 + i)
		if got := r.at(i).seq; got != want {
			t.Fatalf("slot %d seq = %d, want %d", i, got, want)
		}
	}
}

func TestAggregatorDedupAndCoverage(t *testing.T) {
	a := NewAggregator(4, 8, DetectorConfig{})
	cols := []Col{{Name: "rt.task.executed", Kind: KindCounter}}
	for rank := 0; rank < 3; rank++ {
		a.Ingest(rank, 1, 0, 1000, cols, []float64{10})
		a.Ingest(rank, 2, 0, 2000, cols, []float64{30})
		a.Ingest(rank, 2, 0, 2000, cols, []float64{999}) // duplicate seq: dropped
		a.Ingest(rank, 1, 0, 1000, cols, []float64{888}) // stale seq: dropped
	}
	if got := a.Coverage(); got != 3 {
		t.Fatalf("Coverage = %d, want 3", got)
	}
	cv, ok := a.ClusterJSON().(ClusterView)
	if !ok {
		t.Fatal("ClusterJSON did not return a ClusterView")
	}
	if cv.Size != 4 || len(cv.PerRank) != 4 {
		t.Fatalf("per-rank list covers %d of size %d, want 4 of 4", len(cv.PerRank), cv.Size)
	}
	for rank := 0; rank < 3; rank++ {
		rv := cv.PerRank[rank]
		if rv.LastSeq != 2 {
			t.Errorf("rank %d LastSeq = %d, want 2 (duplicate not dropped?)", rank, rv.LastSeq)
		}
		if rv.Totals["rt.task.executed"] != 30 {
			t.Errorf("rank %d total = %v, want 30", rank, rv.Totals["rt.task.executed"])
		}
		if len(rv.Intervals) != 1 || rv.Intervals[0].Deltas["rt.task.executed"] != 20 {
			t.Errorf("rank %d intervals = %+v, want one delta of 20", rank, rv.Intervals)
		}
	}
	if cv.PerRank[3].LastSeq != 0 {
		t.Errorf("silent rank should render with empty series")
	}
	if cv.Merged["rt.task.executed"] != 90 {
		t.Errorf("merged total = %v, want 90", cv.Merged["rt.task.executed"])
	}
}

func TestAggregatorHandlesFrameWire(t *testing.T) {
	a := NewAggregator(2, 8, DetectorConfig{})
	cols := []Col{{Name: "comm.bytes.sent", Kind: KindCounter}}
	buf := encodeFrame(nil, 1, 1, 3, 5000, cols, []float64{4096})
	a.HandleFrame(1, buf)
	a.HandleFrame(1, []byte{0xde, 0xad}) // garbage: dropped, no panic
	v := a.View(1)
	if v.LastSeq != 1 || v.Totals["comm.bytes.sent"] != 4096 {
		t.Fatalf("frame not ingested: %+v", v)
	}
	cv := a.ClusterJSON().(ClusterView)
	if cv.Epoch != 3 {
		t.Fatalf("epoch = %d, want 3", cv.Epoch)
	}
}

func TestStragglerDetector(t *testing.T) {
	a := NewAggregator(4, 32, DetectorConfig{StragglerMin: 3})
	cols := []Col{{Name: "rt.task.executed", Kind: KindCounter}}
	// Ranks 1..3 complete 1000 tasks per 250ms interval; rank 0 completes 10.
	ts := int64(0)
	for seq := uint64(1); seq <= 8; seq++ {
		ts += int64(250 * time.Millisecond)
		for rank := 0; rank < 4; rank++ {
			rate := 1000.0
			if rank == 0 {
				rate = 10
			}
			a.Ingest(rank, seq, 0, ts, cols, []float64{rate * float64(seq)})
		}
	}
	if n := a.EventCount(EvStraggler); n == 0 {
		t.Fatalf("straggler never detected; events: %+v", a.Events())
	}
	for _, e := range a.Events() {
		if e.Kind == EvStraggler && e.Rank != 0 {
			t.Fatalf("straggler fired for healthy rank %d: %+v", e.Rank, e)
		}
	}
}

func TestRetransmitSurgeDetector(t *testing.T) {
	a := NewAggregator(2, 64, DetectorConfig{})
	cols := []Col{{Name: "comm.retransmits", Kind: KindCounter}}
	ts, total := int64(0), 0.0
	for seq := uint64(1); seq <= 20; seq++ {
		ts += int64(250 * time.Millisecond)
		if seq == 15 {
			total += 500 // surge
		}
		a.Ingest(0, seq, 0, ts, cols, []float64{total})
	}
	if n := a.EventCount(EvRetransSurge); n != 1 {
		t.Fatalf("retransmit surge events = %d, want 1; events: %+v", n, a.Events())
	}
}

func TestQuietClusterRaisesNoEvents(t *testing.T) {
	a := NewAggregator(4, 64, DetectorConfig{})
	cols := []Col{
		{Name: "rt.task.executed", Kind: KindCounter},
		{Name: "comm.retransmits", Kind: KindCounter},
		{Name: "termdet.pending", Kind: KindGauge},
	}
	ts := int64(0)
	for seq := uint64(1); seq <= 30; seq++ {
		ts += int64(250 * time.Millisecond)
		for rank := 0; rank < 4; rank++ {
			a.Ingest(rank, seq, 0, ts, cols, []float64{1000 * float64(seq), 0, 5})
		}
	}
	if evs := a.Events(); len(evs) != 0 {
		t.Fatalf("healthy cluster raised events: %+v", evs)
	}
}

func TestRecorderDump(t *testing.T) {
	dir := t.TempDir()
	src := newFakeSource()
	src.set("rt.task.executed", 50)
	s := NewSampler(2, src.snap, time.Hour, 8, nil, nil)
	s.SampleNow()
	src.set("rt.task.executed", 80)
	s.SampleNow()

	rec := NewRecorder(2, dir, s, nil)
	rec.Note(Event{Kind: "steal", Rank: 2, Msg: "victim=1"})
	path, err := rec.Dump("abort")
	if err != nil {
		t.Fatalf("Dump: %v", err)
	}
	if !strings.Contains(filepath.Base(path), "flight-rank2-abort") {
		t.Fatalf("unexpected dump name %q", path)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read dump: %v", err)
	}
	var d FlightDump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if d.Schema != "gottg.flight/v1" || d.Rank != 2 || d.Reason != "abort" {
		t.Fatalf("dump header: %+v", d)
	}
	if len(d.Events) != 1 || d.Events[0].Kind != "steal" {
		t.Fatalf("dump events: %+v", d.Events)
	}
	if d.Local.Totals["rt.task.executed"] != 80 {
		t.Fatalf("dump local totals: %+v", d.Local.Totals)
	}
	// Same reason again: no second file.
	p2, err := rec.Dump("abort")
	if err != nil || p2 != path {
		t.Fatalf("repeat dump: %q, %v (want original path)", p2, err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("directory has %d files, want 1", len(ents))
	}
}

// loopWire wires N in-process planes together: SendTelemetry(0, …) invokes
// rank 0's handler synchronously.
type loopWire struct {
	rank, size int
	hub        *loopHub
}

type loopHub struct {
	mu sync.Mutex
	h  func(src int, payload []byte)
}

func (w *loopWire) Rank() int { return w.rank }
func (w *loopWire) Size() int { return w.size }
func (w *loopWire) SendTelemetry(dst int, payload []byte) {
	w.hub.mu.Lock()
	h := w.hub.h
	w.hub.mu.Unlock()
	if dst == 0 && h != nil {
		h(w.rank, payload)
	}
}
func (w *loopWire) SetTelemetryHandler(h func(src int, payload []byte)) {
	w.hub.mu.Lock()
	w.hub.h = h
	w.hub.mu.Unlock()
}

func TestPlaneEndToEndOverLoopWire(t *testing.T) {
	dir := t.TempDir()
	hub := &loopHub{}
	srcs := make([]*fakeSource, 3)
	planes := make([]*Plane, 3)
	for r := 0; r < 3; r++ {
		srcs[r] = newFakeSource()
		srcs[r].set("rt.task.executed", uint64(100*(r+1)))
		planes[r] = Start(&loopWire{rank: r, size: 3, hub: hub},
			srcs[r].snap, Options{Interval: time.Hour, FlightDir: dir})
	}
	for round := 2; round <= 3; round++ {
		for r := 0; r < 3; r++ {
			srcs[r].set("rt.task.executed", uint64(100*(r+1)*round))
			planes[r].Sampler().SampleNow()
		}
	}
	agg := planes[0].Aggregator()
	if agg == nil {
		t.Fatal("rank 0 has no aggregator")
	}
	if got := agg.Coverage(); got != 3 {
		t.Fatalf("coverage = %d, want 3", got)
	}
	cv := agg.ClusterJSON().(ClusterView)
	for r := 0; r < 3; r++ {
		if len(cv.PerRank[r].Intervals) == 0 {
			t.Fatalf("rank %d has no intervals in the cluster model", r)
		}
	}
	// Rank 1 dies: rank 0's plane dumps a flight record holding rank 1's
	// streamed intervals.
	planes[0].OnEvent("rank_dead", 1, "epoch 2")
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("no flight dump after rank death (err=%v)", err)
	}
	raw, _ := os.ReadFile(filepath.Join(dir, ents[0].Name()))
	var d FlightDump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("dump JSON: %v", err)
	}
	if d.Cluster == nil {
		t.Fatal("rank-0 dump lacks the cluster model")
	}
	var dead *RankView
	for i := range d.Cluster.PerRank {
		if d.Cluster.PerRank[i].Rank == 1 {
			dead = &d.Cluster.PerRank[i]
		}
	}
	if dead == nil || !dead.Dead || len(dead.Intervals) == 0 {
		t.Fatalf("dump does not hold the dead rank's final intervals: %+v", dead)
	}
	for _, p := range planes {
		p.Stop()
	}
}
