package telemetry

import (
	"fmt"
	"time"

	"gottg/internal/metrics"
)

// Options configures a rank's telemetry plane.
type Options struct {
	// Interval between samples (DefaultInterval when zero).
	Interval time.Duration
	// Window is the per-rank interval ring size (DefaultWindow when zero).
	Window int
	// FlightDir receives flight-recorder dumps ("." when empty).
	FlightDir string
	// Detectors tunes the rank-0 anomaly detectors.
	Detectors DetectorConfig
}

// Plane is one rank's end of the telemetry system: the sampler, the flight
// recorder, and — on rank 0 — the cluster aggregator. Start it after the
// metrics registries exist and before the comm endpoint starts (rank 0
// installs the frame handler on the wire); Stop it after the run drains.
type Plane struct {
	rank    int
	sampler *Sampler
	agg     *Aggregator // nil on ranks != 0
	rec     *Recorder
}

// Start builds and launches the plane for this rank. snap must return the
// rank's merged metrics snapshot (runtime + wire); wire may be nil for
// purely local (single-process) use, in which case every rank behaves like
// rank 0 without a cluster model.
func Start(wire Wire, snap func() metrics.Snapshot, o Options) *Plane {
	rank, size := 0, 1
	if wire != nil {
		rank, size = wire.Rank(), wire.Size()
	}
	p := &Plane{rank: rank}
	if rank == 0 {
		p.agg = NewAggregator(size, o.Window, o.Detectors)
		if wire != nil {
			wire.SetTelemetryHandler(p.agg.HandleFrame)
		}
	}
	p.sampler = NewSampler(rank, snap, o.Interval, o.Window, wire, p.agg)
	p.rec = NewRecorder(rank, o.FlightDir, p.sampler, p.agg)
	p.sampler.Start()
	return p
}

// Stop halts sampling after one final flushed sample. Idempotent.
func (p *Plane) Stop() { p.sampler.Stop() }

// Sampler returns the local sampler (never nil).
func (p *Plane) Sampler() *Sampler { return p.sampler }

// Aggregator returns the cluster model, nil on ranks other than 0.
func (p *Plane) Aggregator() *Aggregator { return p.agg }

// Recorder returns the flight recorder (never nil).
func (p *Plane) Recorder() *Recorder { return p.rec }

// OnEvent feeds one lifecycle event into the plane. It is shaped to slot
// directly under core.Graph.SetEventHook. Beyond logging, some kinds have
// side effects:
//
//   - "rank_dead": rank 0 marks the rank dead in the cluster model and dumps
//     a flight record containing the dead rank's final streamed intervals
//     (the dead process cannot dump for itself under SIGKILL); other ranks
//     dump locally when the coordinator (rank 0) is the casualty, since the
//     cluster model died with it.
//   - "abort", "killed": the local rank dumps its own flight record before
//     the runtime tears down.
func (p *Plane) OnEvent(kind string, rank int, detail string) {
	e := Event{TsNs: time.Now().UnixNano(), Kind: kind, Rank: rank, Msg: detail}
	p.rec.Note(e)
	if p.agg != nil {
		p.agg.Note(e)
	}
	switch kind {
	case "rank_dead":
		if p.agg != nil {
			p.agg.MarkDead(rank, 0)
			// Flush the local series first so rank 0's own final intervals
			// are in the cluster model embedded in the dump.
			p.sampler.SampleNow()
			p.rec.Dump(fmt.Sprintf("rank_dead_%d", rank))
		} else if rank == 0 {
			p.rec.Dump("coordinator_dead")
		}
	case "abort", "killed":
		p.sampler.SampleNow()
		p.rec.Dump(kind)
	}
}

// DumpFlight forces a flight-recorder dump with the given reason, returning
// the file path.
func (p *Plane) DumpFlight(reason string) (string, error) {
	p.sampler.SampleNow()
	return p.rec.Dump(reason)
}
