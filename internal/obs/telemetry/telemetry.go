// Package telemetry is the cluster metric plane: it turns the per-process
// metrics registries (internal/metrics) into cluster-wide time series.
//
// Every rank runs a Sampler — a goroutine that snapshots the merged metrics
// registry at a fixed interval (default 250ms), flattens the snapshot onto a
// stable column schema, and stores the cumulative values in a fixed-size
// ring (steady state reuses the ring slots' value slices, so sampling does
// not grow the heap). Non-zero ranks additionally encode each interval as a
// self-describing frame and ship it to rank 0 over the comm layer on a
// reserved control tag; telemetry frames are unsequenced, wave-exempt, and
// best-effort, exactly like heartbeats, so the plane can never perturb the
// termination protocol, occupy retransmit state, or change a run's result.
//
// Rank 0 runs an Aggregator: it keeps one ring of intervals per rank (its
// own fed directly by its local sampler), derives per-interval deltas from
// the cumulative streams (a lost frame just widens one interval instead of
// corrupting the series), runs online anomaly detectors over the per-rank
// series (straggler rank, queue backlog spike, steal storm, retransmit
// surge), and serves the merged cluster model through obs.ServeCluster
// (/cluster.json, rank-labelled Prometheus exposition).
//
// Every rank also owns a flight Recorder: the local interval ring plus a
// bounded log of lifecycle events (rank deaths, epoch changes, aborts,
// steals, peer connection transitions). The recorder dumps itself to a JSON
// file on abort, on SIGQUIT, when this rank is fail-stopped, and — on rank 0
// — whenever a peer is confirmed dead, so the dump holds the dead rank's
// final streamed intervals: chaos-soak failures leave post-mortem evidence
// even though the dead process itself never got to flush anything.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gottg/internal/metrics"
)

// DefaultInterval is the sampling period when Options.Interval is zero.
const DefaultInterval = 250 * time.Millisecond

// DefaultWindow is the per-rank ring size when Options.Window is zero: at
// the default interval, 64 slots keep the last ~16 seconds.
const DefaultWindow = 64

// ColKind distinguishes cumulative columns (deltas are meaningful) from
// level columns (the sampled value is the reading).
type ColKind uint8

const (
	// KindCounter marks a monotonically accumulating column (counters and
	// histogram count/sum components): consumers difference consecutive
	// samples to get per-interval activity.
	KindCounter ColKind = iota
	// KindGauge marks a level column: the sampled value is used as-is.
	KindGauge
)

// how a column is extracted from a metrics.Snapshot.
const (
	srcCounter uint8 = iota
	srcGauge
	srcHistCount
	srcHistSum
)

// Col is one column of a rank's time series.
type Col struct {
	Name string  `json:"name"`
	Kind ColKind `json:"kind"`

	src  uint8  // extraction path (zero value srcCounter for decoded frames)
	base string // histogram base name for srcHistCount/srcHistSum
}

// schema is an append-only ordered column set. Columns are discovered from
// snapshots (sorted within each discovery batch so sampling is deterministic
// for a fixed metric set) or taken verbatim from decoded frames.
type schema struct {
	cols  []Col
	index map[string]int
}

func (sc *schema) ensure(c Col) int {
	if sc.index == nil {
		sc.index = map[string]int{}
	}
	if i, ok := sc.index[c.Name]; ok {
		return i
	}
	sc.index[c.Name] = len(sc.cols)
	sc.cols = append(sc.cols, c)
	return len(sc.cols) - 1
}

// flatten extends the schema with any names unseen so far and renders the
// snapshot as one value per column (0 for columns the snapshot no longer
// carries). vals is reused; the returned slice aliases it.
func (sc *schema) flatten(snap metrics.Snapshot, vals []float64) []float64 {
	var fresh []Col
	add := func(c Col) {
		if sc.index == nil {
			sc.index = map[string]int{}
		}
		if _, ok := sc.index[c.Name]; !ok {
			// Reserve the slot now so duplicates within this batch collapse;
			// the batch is re-sorted into its final order below.
			sc.index[c.Name] = -1
			fresh = append(fresh, c)
		}
	}
	for name := range snap.Counters {
		add(Col{Name: name, Kind: KindCounter, src: srcCounter})
	}
	for name := range snap.Gauges {
		add(Col{Name: name, Kind: KindGauge, src: srcGauge})
	}
	for name := range snap.Histograms {
		add(Col{Name: name + ".count", Kind: KindCounter, src: srcHistCount, base: name})
		add(Col{Name: name + ".sum", Kind: KindCounter, src: srcHistSum, base: name})
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].Name < fresh[j].Name })
	for _, c := range fresh {
		sc.index[c.Name] = len(sc.cols)
		sc.cols = append(sc.cols, c)
	}

	if cap(vals) < len(sc.cols) {
		vals = append(vals[:cap(vals)], make([]float64, len(sc.cols)-cap(vals))...)
	}
	vals = vals[:len(sc.cols)]
	for i := range vals {
		c := &sc.cols[i]
		switch c.src {
		case srcCounter:
			vals[i] = float64(snap.Counters[c.Name])
		case srcGauge:
			vals[i] = float64(snap.Gauges[c.Name])
		case srcHistCount:
			vals[i] = float64(snap.Histograms[c.base].Count)
		case srcHistSum:
			vals[i] = float64(snap.Histograms[c.base].Sum)
		}
	}
	return vals
}

// ring is a fixed-capacity interval buffer. Slots' value slices are reused
// across wraps, so pushing is allocation-free once every slot has been
// written at the current schema width. Callers synchronize.
type ring struct {
	slots []slot
	head  int    // next write position
	n     int    // filled slots
	seq   uint64 // sequence of the next pushed interval (starts at 1)
}

type slot struct {
	seq  uint64
	tsNs int64
	vals []float64 // cumulative values, schema-indexed
}

func newRing(capacity int) *ring {
	if capacity < 2 {
		capacity = 2
	}
	return &ring{slots: make([]slot, capacity), seq: 1}
}

// push records one interval, overwriting the oldest when full.
func (r *ring) push(seq uint64, tsNs int64, vals []float64) {
	s := &r.slots[r.head]
	s.seq = seq
	s.tsNs = tsNs
	s.vals = append(s.vals[:0], vals...)
	r.head = (r.head + 1) % len(r.slots)
	if r.n < len(r.slots) {
		r.n++
	}
}

// pushNext records one interval under the ring's own sequence counter.
func (r *ring) pushNext(tsNs int64, vals []float64) uint64 {
	seq := r.seq
	r.seq++
	r.push(seq, tsNs, vals)
	return seq
}

// at returns the i-th oldest filled slot (0 = oldest).
func (r *ring) at(i int) *slot {
	return &r.slots[(r.head-r.n+i+2*len(r.slots))%len(r.slots)]
}

// last returns the most recent slot, nil when empty.
func (r *ring) last() *slot {
	if r.n == 0 {
		return nil
	}
	return r.at(r.n - 1)
}

// Wire is the slice of the comm layer the plane needs; *comm.Proc satisfies
// it directly. SetTelemetryHandler must be called before the endpoint starts.
type Wire interface {
	Rank() int
	Size() int
	SendTelemetry(dst int, payload []byte)
	SetTelemetryHandler(h func(src int, payload []byte))
}

// Sampler periodically snapshots a metrics source into a local interval ring
// and, on non-zero ranks, streams each interval to rank 0.
type Sampler struct {
	mu      sync.Mutex
	schema  schema
	ring    *ring
	snap    func() metrics.Snapshot
	scratch []float64

	rank     int
	interval time.Duration
	wire     Wire        // nil: no streaming (rank 0, or tests)
	sink     *Aggregator // non-nil on rank 0: local fast path into the cluster model

	samples atomic.Int64
	frames  atomic.Int64
	stopped atomic.Bool

	quit chan struct{}
	done chan struct{}
}

// NewSampler builds a sampler over snap. wire is nil for purely local use;
// sink is the rank-0 aggregator fed directly (nil elsewhere). Start launches
// the sampling goroutine; SampleNow drives it manually (tests).
func NewSampler(rank int, snap func() metrics.Snapshot, interval time.Duration, window int, wire Wire, sink *Aggregator) *Sampler {
	if interval <= 0 {
		interval = DefaultInterval
	}
	if window <= 0 {
		window = DefaultWindow
	}
	return &Sampler{
		ring:     newRing(window),
		snap:     snap,
		rank:     rank,
		interval: interval,
		wire:     wire,
		sink:     sink,
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// SampleNow takes one sample: snapshot, flatten, ring push, and — when
// streaming — one frame to rank 0. Safe from any goroutine.
func (s *Sampler) SampleNow() {
	now := time.Now()
	snap := s.snap()
	s.mu.Lock()
	s.scratch = s.schema.flatten(snap, s.scratch)
	seq := s.ring.pushNext(now.UnixNano(), s.scratch)
	var frame []byte
	if s.wire != nil && s.rank != 0 {
		// The frame is freshly allocated per interval: payload ownership
		// passes to the wire (in-process delivery shares the slice with the
		// receiving rank, so reusing an encode buffer would race).
		frame = encodeFrame(nil, s.rank, seq, 0, now.UnixNano(), s.schema.cols, s.scratch)
	}
	if s.sink != nil {
		s.sink.Ingest(s.rank, seq, 0, now.UnixNano(), s.schema.cols, s.scratch)
	}
	s.mu.Unlock()
	s.samples.Add(1)
	if frame != nil {
		s.wire.SendTelemetry(0, frame)
		s.frames.Add(1)
	}
}

// Start launches the periodic sampling goroutine.
func (s *Sampler) Start() {
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-s.quit:
				return
			case <-t.C:
				s.SampleNow()
			}
		}
	}()
}

// Stop halts periodic sampling and takes one final sample (flushed to rank 0
// when streaming) so the cluster model sees the run's closing state.
// Idempotent; safe even if Start was never called... but then the final
// sample still fires once.
func (s *Sampler) Stop() {
	if s.stopped.Swap(true) {
		return
	}
	close(s.quit)
	select {
	case <-s.done:
	case <-time.After(2 * time.Second):
	}
	s.SampleNow()
}

// Samples returns how many intervals this sampler has recorded.
func (s *Sampler) Samples() int64 { return s.samples.Load() }

// Frames returns how many interval frames were streamed to rank 0.
func (s *Sampler) Frames() int64 { return s.frames.Load() }

// View renders the local ring for JSON surfaces and flight dumps.
func (s *Sampler) View() RankView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return renderSeries(s.rank, &s.schema, s.ring, false, 0)
}

// renderSeries converts a cumulative ring into the exported per-interval
// delta view. Caller holds the owning lock.
func renderSeries(rank int, sc *schema, r *ring, dead bool, lastHeard int64) RankView {
	v := RankView{Rank: rank, Dead: dead, LastHeardNs: lastHeard}
	if r == nil || r.n == 0 {
		return v
	}
	last := r.last()
	v.LastSeq = last.seq
	v.LastTsNs = last.tsNs
	v.Totals = make(map[string]float64, len(sc.cols))
	for i, c := range sc.cols {
		if i < len(last.vals) {
			v.Totals[c.Name] = last.vals[i]
		}
	}
	for i := 1; i < r.n; i++ {
		prev, cur := r.at(i-1), r.at(i)
		iv := IntervalView{
			Seq:    cur.seq,
			TsNs:   cur.tsNs,
			DtNs:   cur.tsNs - prev.tsNs,
			Deltas: make(map[string]float64, len(cur.vals)),
		}
		for j, c := range sc.cols {
			if j >= len(cur.vals) {
				break
			}
			switch c.Kind {
			case KindGauge:
				iv.Deltas[c.Name] = cur.vals[j]
			default:
				var p float64
				if j < len(prev.vals) {
					p = prev.vals[j]
				}
				d := cur.vals[j] - p
				if d != 0 {
					iv.Deltas[c.Name] = d
				}
			}
		}
		v.Intervals = append(v.Intervals, iv)
	}
	return v
}
