package telemetry

import "fmt"

// Event is one structured occurrence in the telemetry plane: a detector
// firing or a lifecycle transition (rank death, abort, epoch change…).
type Event struct {
	TsNs     int64   `json:"ts_ns"`
	Kind     string  `json:"kind"`
	Rank     int     `json:"rank"`
	Value    float64 `json:"value,omitempty"`
	Baseline float64 `json:"baseline,omitempty"`
	Msg      string  `json:"msg,omitempty"`
}

// Detector event kinds.
const (
	EvStraggler    = "straggler"
	EvQueueSpike   = "queue_spike"
	EvStealStorm   = "steal_storm"
	EvRetransSurge = "retransmit_surge"
)

// Metric columns the detectors watch. They degrade gracefully: a deployment
// that never registers a column simply never fires that detector.
const (
	colTasks   = "rt.task.executed"
	colPending = "termdet.pending"
	colSteals  = "comm.steal_reqs"
	colRetrans = "comm.retransmits"
)

// DetectorConfig tunes the online anomaly detectors. Zero fields take the
// documented defaults.
type DetectorConfig struct {
	// StragglerFrac: a rank is a straggler when its per-interval task rate
	// stays below this fraction of the live-rank median. Default 0.4.
	StragglerFrac float64
	// StragglerMin: consecutive below-threshold intervals before the
	// straggler event fires. Default 3.
	StragglerMin int
	// ZThreshold: z-score (vs. the per-rank EWMA baseline) above which the
	// spike/storm/surge detectors fire. Default 4.
	ZThreshold float64
	// MinSamples: intervals of baseline before z-detectors may fire.
	// Default 5.
	MinSamples int
	// QueueMin/StealMin/RetransMin: absolute floors — a z-score excursion
	// below the floor never fires (tiny baselines make huge z-scores).
	// Defaults 64 pending tasks, 16 steal requests, 8 retransmits.
	QueueMin, StealMin, RetransMin float64
	// Cooldown: intervals a (kind, rank) pair stays quiet after firing.
	// Default 8.
	Cooldown int
}

func (c *DetectorConfig) defaults() {
	if c.StragglerFrac <= 0 {
		c.StragglerFrac = 0.4
	}
	if c.StragglerMin <= 0 {
		c.StragglerMin = 3
	}
	if c.ZThreshold <= 0 {
		c.ZThreshold = 4
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
	if c.QueueMin <= 0 {
		c.QueueMin = 64
	}
	if c.StealMin <= 0 {
		c.StealMin = 16
	}
	if c.RetransMin <= 0 {
		c.RetransMin = 8
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 8
	}
}

// ewma is an exponentially-weighted mean/variance baseline (α = 0.2).
type ewma struct {
	mean, varr float64
	n          int
}

const ewmaAlpha = 0.2

func (e *ewma) observe(x float64) (z float64) {
	if e.n == 0 {
		e.mean = x
		e.n = 1
		return 0
	}
	sd := e.sd()
	if sd > 0 {
		z = (x - e.mean) / sd
	} else if x > e.mean {
		z = inf
	}
	d := x - e.mean
	e.mean += ewmaAlpha * d
	e.varr = (1 - ewmaAlpha) * (e.varr + ewmaAlpha*d*d)
	e.n++
	return z
}

func (e *ewma) sd() float64 {
	if e.varr <= 0 {
		return 0
	}
	// Newton's iteration is overkill; this baseline only gates alerts.
	x := e.varr
	g := x
	for i := 0; i < 20; i++ {
		g = 0.5 * (g + x/g)
	}
	return g
}

const inf = 1e308

// rankDetState is the per-rank detector state.
type rankDetState struct {
	lastVals   map[string]float64 // previous cumulative reading per watched column
	havePrev   bool
	slowRuns   int // consecutive below-median-rate intervals
	base       map[string]*ewma
	cooldownAt map[string]uint64 // detector kind → seq until which it is quiet
	lastRate   float64           // most recent task rate (tasks/sec), for the straggler median
	haveRate   bool
}

// detectors runs all online anomaly detectors; the owner (Aggregator)
// serializes calls.
type detectors struct {
	cfg   DetectorConfig
	state map[int]*rankDetState
}

func newDetectors(cfg DetectorConfig) *detectors {
	cfg.defaults()
	return &detectors{cfg: cfg, state: map[int]*rankDetState{}}
}

// observe processes rank r's newest interval and returns any events raised.
// live maps every non-dead rank to its series (for the straggler median).
func (d *detectors) observe(live map[int]*rankSeries, r int, rs *rankSeries, tsNs int64) []Event {
	st := d.state[r]
	if st == nil {
		st = &rankDetState{
			lastVals:   map[string]float64{},
			base:       map[string]*ewma{},
			cooldownAt: map[string]uint64{},
		}
		d.state[r] = st
	}
	last := rs.ring.last()
	if last == nil {
		return nil
	}
	cur := map[string]float64{}
	for i, c := range rs.schema.cols {
		switch c.Name {
		case colTasks, colPending, colSteals, colRetrans:
			if i < len(last.vals) {
				cur[c.Name] = last.vals[i]
			}
		}
	}
	// Interval duration: difference of the two newest timestamps; fall back
	// to the default interval for the first sample.
	dtNs := int64(DefaultInterval)
	if rs.ring.n >= 2 {
		if dt := rs.ring.at(rs.ring.n-1).tsNs - rs.ring.at(rs.ring.n-2).tsNs; dt > 0 {
			dtNs = dt
		}
	}
	var evs []Event
	fire := func(kind string, v, baseline float64, msg string) {
		if last.seq < st.cooldownAt[kind] {
			return
		}
		st.cooldownAt[kind] = last.seq + uint64(d.cfg.Cooldown)
		evs = append(evs, Event{TsNs: tsNs, Kind: kind, Rank: r, Value: v, Baseline: baseline, Msg: msg})
	}

	if st.havePrev {
		dt := float64(dtNs) / 1e9

		// Straggler: per-interval task completion rate vs. live median.
		if _, ok := cur[colTasks]; ok {
			rate := (cur[colTasks] - st.lastVals[colTasks]) / dt
			st.lastRate, st.haveRate = rate, true
			med, nLive := d.medianRate(live, r)
			if nLive >= 1 && med > 0 && rate < d.cfg.StragglerFrac*med {
				st.slowRuns++
				if st.slowRuns >= d.cfg.StragglerMin {
					fire(EvStraggler, rate, med, fmt.Sprintf(
						"rank %d at %.0f tasks/s vs cluster median %.0f for %d intervals", r, rate, med, st.slowRuns))
				}
			} else {
				st.slowRuns = 0
			}
		}

		// Queue backlog spike: pending-task gauge level.
		if v, ok := cur[colPending]; ok {
			d.zDetect(st, fire, EvQueueSpike, v, d.cfg.QueueMin,
				fmt.Sprintf("rank %d pending backlog %.0f", r, v))
		}
		// Steal storm: steal-request rate.
		if v, ok := cur[colSteals]; ok {
			dd := v - st.lastVals[colSteals]
			d.zDetect(st, fire, EvStealStorm, dd, d.cfg.StealMin,
				fmt.Sprintf("rank %d issued %.0f steal requests in one interval", r, dd))
		}
		// Retransmit surge: link-layer retransmission rate.
		if v, ok := cur[colRetrans]; ok {
			dd := v - st.lastVals[colRetrans]
			d.zDetect(st, fire, EvRetransSurge, dd, d.cfg.RetransMin,
				fmt.Sprintf("rank %d retransmitted %.0f frames in one interval", r, dd))
		}
	}
	for k, v := range cur {
		st.lastVals[k] = v
	}
	st.havePrev = true
	return evs
}

// zDetect updates the EWMA baseline for kind and fires when the excursion
// clears both the z-threshold and the absolute floor.
func (d *detectors) zDetect(st *rankDetState, fire func(string, float64, float64, string), kind string, v, floor float64, msg string) {
	b := st.base[kind]
	if b == nil {
		b = &ewma{}
		st.base[kind] = b
	}
	baseline := b.mean
	z := b.observe(v)
	if b.n > d.cfg.MinSamples && z >= d.cfg.ZThreshold && v >= floor {
		fire(kind, v, baseline, msg)
	}
}

// medianRate returns the median task rate across live ranks other than
// excl, and how many contributed.
func (d *detectors) medianRate(live map[int]*rankSeries, excl int) (float64, int) {
	var rates []float64
	for r := range live {
		if r == excl {
			continue
		}
		if st := d.state[r]; st != nil && st.haveRate {
			rates = append(rates, st.lastRate)
		}
	}
	if len(rates) == 0 {
		return 0, 0
	}
	// insertion sort: rank counts are small
	for i := 1; i < len(rates); i++ {
		for j := i; j > 0 && rates[j] < rates[j-1]; j-- {
			rates[j], rates[j-1] = rates[j-1], rates[j]
		}
	}
	return rates[len(rates)/2], len(rates)
}
