//go:build unix

package telemetry

import (
	"os"
	"os/signal"
	"syscall"
)

// ArmSIGQUIT installs a SIGQUIT handler that dumps the flight recorder and
// then restores the default disposition and re-raises, preserving Go's
// stock behaviour (full goroutine dump + exit) after the post-mortem file
// is on disk. Returns a disarm function.
func (p *Plane) ArmSIGQUIT() func() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		select {
		case <-ch:
			p.DumpFlight("sigquit")
			signal.Reset(syscall.SIGQUIT)
			syscall.Kill(syscall.Getpid(), syscall.SIGQUIT)
		case <-done:
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
