package telemetry

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Telemetry interval frame, little-endian:
//
//	u8  version (frameVersion)
//	u32 rank
//	u64 seq        (per-rank interval sequence, starts at 1)
//	u64 epoch      (membership epoch at sampling time; 0 when unknown)
//	i64 tsNs       (sample wall-clock, UnixNano)
//	u32 ncols
//	ncols × { u8 kind, u16 len(name), name bytes, u64 float64-bits (cumulative value) }
//
// Frames are self-describing: every frame carries its full column set, so
// any single frame reconstructs the rank's current totals — the stream
// survives arbitrary loss and reordering, at ~2KB per frame for the
// runtime's ~40 metric columns. Values are cumulative, never deltas;
// the receiver differences consecutive accepted frames itself.
const frameVersion = 1

// maxFrameCols bounds decode against corrupt or truncated payloads.
const maxFrameCols = 4096

// encodeFrame appends one interval frame to dst and returns it.
func encodeFrame(dst []byte, rank int, seq, epoch uint64, tsNs int64, cols []Col, vals []float64) []byte {
	dst = append(dst, frameVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(rank))
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = binary.LittleEndian.AppendUint64(dst, epoch)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(tsNs))
	n := len(cols)
	if n > len(vals) {
		n = len(vals)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	for i := 0; i < n; i++ {
		dst = append(dst, byte(cols[i].Kind))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(cols[i].Name)))
		dst = append(dst, cols[i].Name...)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(vals[i]))
	}
	return dst
}

// frame is one decoded telemetry interval.
type frame struct {
	rank  int
	seq   uint64
	epoch uint64
	tsNs  int64
	cols  []Col
	vals  []float64
}

// decodeFrame parses a telemetry payload. Corrupt input yields an error,
// never a panic: frames ride the best-effort path and may be duplicated or
// (under injected faults) arbitrarily mangled.
func decodeFrame(p []byte) (frame, error) {
	var f frame
	const header = 1 + 4 + 8 + 8 + 8 + 4
	if len(p) < header {
		return f, fmt.Errorf("telemetry: frame too short (%d bytes)", len(p))
	}
	if p[0] != frameVersion {
		return f, fmt.Errorf("telemetry: unknown frame version %d", p[0])
	}
	f.rank = int(binary.LittleEndian.Uint32(p[1:]))
	f.seq = binary.LittleEndian.Uint64(p[5:])
	f.epoch = binary.LittleEndian.Uint64(p[13:])
	f.tsNs = int64(binary.LittleEndian.Uint64(p[21:]))
	ncols := int(binary.LittleEndian.Uint32(p[29:]))
	if ncols < 0 || ncols > maxFrameCols {
		return f, fmt.Errorf("telemetry: implausible column count %d", ncols)
	}
	off := header
	f.cols = make([]Col, 0, ncols)
	f.vals = make([]float64, 0, ncols)
	for i := 0; i < ncols; i++ {
		if off+3 > len(p) {
			return f, fmt.Errorf("telemetry: truncated column header at %d", off)
		}
		kind := ColKind(p[off])
		nameLen := int(binary.LittleEndian.Uint16(p[off+1:]))
		off += 3
		if off+nameLen+8 > len(p) {
			return f, fmt.Errorf("telemetry: truncated column body at %d", off)
		}
		name := string(p[off : off+nameLen])
		off += nameLen
		v := math.Float64frombits(binary.LittleEndian.Uint64(p[off:]))
		off += 8
		if kind != KindCounter && kind != KindGauge {
			return f, fmt.Errorf("telemetry: unknown column kind %d", kind)
		}
		f.cols = append(f.cols, Col{Name: name, Kind: kind})
		f.vals = append(f.vals, v)
	}
	return f, nil
}
