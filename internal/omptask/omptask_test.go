package omptask

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestIndependentTasks(t *testing.T) {
	r := New(4)
	defer r.Close()
	var n atomic.Int64
	for i := 0; i < 1000; i++ {
		r.Submit(nil, func(int) { n.Add(1) })
	}
	r.Wait()
	if n.Load() != 1000 {
		t.Fatalf("ran %d, want 1000", n.Load())
	}
}

func TestWriteAfterWriteOrder(t *testing.T) {
	r := New(4)
	defer r.Close()
	const n = 500
	var seq []int
	for i := 0; i < n; i++ {
		i := i
		r.Submit([]Dep{Out(1)}, func(int) { seq = append(seq, i) })
	}
	r.Wait()
	if len(seq) != n {
		t.Fatalf("len=%d", len(seq))
	}
	for i, v := range seq {
		if v != i {
			t.Fatalf("out-deps on same address not serialized in order: seq[%d]=%d", i, v)
		}
	}
}

func TestReadersConcurrentThenWriterWaits(t *testing.T) {
	r := New(4)
	defer r.Close()
	var readers atomic.Int32
	var writerSawAllReaders atomic.Bool
	r.Submit([]Dep{Out(7)}, func(int) {}) // initial writer
	const R = 8
	for i := 0; i < R; i++ {
		r.Submit([]Dep{In(7)}, func(int) { readers.Add(1) })
	}
	r.Submit([]Dep{Out(7)}, func(int) {
		writerSawAllReaders.Store(readers.Load() == R)
	})
	r.Wait()
	if !writerSawAllReaders.Load() {
		t.Fatal("writer ran before all readers completed")
	}
}

func TestChainThroughDependencies(t *testing.T) {
	// (i) reads cell i-1 and writes cell i: forces a strict chain.
	r := New(4)
	defer r.Close()
	const n = 300
	vals := make([]int, n+1)
	vals[0] = 1
	for i := 1; i <= n; i++ {
		i := i
		r.Submit([]Dep{In(uint64(i - 1)), Out(uint64(i))}, func(int) {
			vals[i] = vals[i-1] + 1
		})
	}
	r.Wait()
	if vals[n] != n+1 {
		t.Fatalf("chain result %d, want %d", vals[n], n+1)
	}
}

func TestStencilDependencies(t *testing.T) {
	// 1D stencil like Task-Bench: task (t,p) writes cell p and reads
	// p-1,p,p+1 from the previous step. Each cell must see exactly T
	// accumulations of its neighbor sums.
	r := New(4)
	defer r.Close()
	const W, T = 16, 20
	cur := make([]int64, W)
	for i := range cur {
		cur[i] = int64(i)
	}
	addr := func(t, p int) uint64 { return uint64(t%2)<<32 | uint64(p) }
	next := make([]int64, W)
	for ts := 0; ts < T; ts++ {
		ts := ts
		for p := 0; p < W; p++ {
			p := p
			deps := []Dep{Out(addr(ts+1, p)), In(addr(ts, p))}
			if p > 0 {
				deps = append(deps, In(addr(ts, p-1)))
			}
			if p < W-1 {
				deps = append(deps, In(addr(ts, p+1)))
			}
			src, dst := cur, next
			if ts%2 == 1 {
				src, dst = next, cur
			}
			r.Submit(deps, func(int) {
				s := src[p]
				if p > 0 {
					s += src[p-1]
				}
				if p < W-1 {
					s += src[p+1]
				}
				dst[p] = s
			})
		}
		// Double-buffer via addr parity; also need the reads of step ts to
		// be ordered against writes of ts+1 into the same parity: addr
		// includes parity so ts+2 writes collide with ts reads — the Out dep
		// on (ts+1,p) and In on (ts,p) chains them correctly.
	}
	r.Wait()
	// Verify against a sequential stencil.
	a := make([]int64, W)
	b := make([]int64, W)
	for i := range a {
		a[i] = int64(i)
	}
	for ts := 0; ts < T; ts++ {
		for p := 0; p < W; p++ {
			s := a[p]
			if p > 0 {
				s += a[p-1]
			}
			if p < W-1 {
				s += a[p+1]
			}
			b[p] = s
		}
		a, b = b, a
	}
	got := cur
	if T%2 == 1 {
		got = next
	}
	for p := 0; p < W; p++ {
		if got[p] != a[p] {
			t.Fatalf("stencil cell %d = %d, want %d", p, got[p], a[p])
		}
	}
}

func TestWaitIsReusable(t *testing.T) {
	r := New(2)
	defer r.Close()
	var n atomic.Int64
	for phase := 0; phase < 5; phase++ {
		for i := 0; i < 100; i++ {
			r.Submit([]Dep{Out(uint64(i % 7))}, func(int) { n.Add(1) })
		}
		r.Wait()
		if n.Load() != int64((phase+1)*100) {
			t.Fatalf("phase %d: %d tasks done", phase, n.Load())
		}
	}
}

// Property: an arbitrary interleaving of writers on a handful of addresses
// must execute all tasks, and per-address writer order must match submit
// order.
func TestQuickWriterOrder(t *testing.T) {
	f := func(addrs []uint8) bool {
		r := New(3)
		defer r.Close()
		type rec struct {
			addr uint8
			seq  int
		}
		perAddr := map[uint8][]int{}
		var mu [256]atomic.Int32
		results := make([]rec, len(addrs))
		for i, a := range addrs {
			i, a := i, a
			perAddr[a] = append(perAddr[a], i)
			r.Submit([]Dep{Out(uint64(a))}, func(int) {
				results[i] = rec{addr: a, seq: int(mu[a].Add(1))}
			})
		}
		r.Wait()
		// For each address, the k-th submitted writer must have observed
		// sequence number k+1.
		for a, idxs := range perAddr {
			for k, i := range idxs {
				if results[i].seq != k+1 {
					_ = a
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
