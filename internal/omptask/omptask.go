// Package omptask is the OpenMP-tasks baseline: tasks with address-based
// in/out dependencies, matched against previously submitted tasks, executed
// by a team sharing one centrally locked task queue — structurally faithful
// to GCC libgomp's team->task_lock design, whose contention is why "OpenMP
// Tasks (GCC)" scales worst in the paper's Figs. 7–8.
package omptask

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Dep declares one dependence of a task on an abstract address. Write
// corresponds to OpenMP depend(out/inout); read to depend(in).
type Dep struct {
	Addr  uint64
	Write bool
}

// In builds a read dependence.
func In(addr uint64) Dep { return Dep{Addr: addr} }

// Out builds a write dependence.
func Out(addr uint64) Dep { return Dep{Addr: addr, Write: true} }

type task struct {
	fn    func(thread int)
	ndeps int
	succs []*task
	done  bool
}

type depRecord struct {
	lastWriter *task
	readers    []*task
}

// Runtime is an OpenMP-tasks-like execution team.
type Runtime struct {
	threads int

	mu      sync.Mutex // THE lock: queue, dependence table, counters
	queue   []*task    // ready FIFO
	deps    map[uint64]*depRecord
	pending int64

	outstanding atomic.Int64
	quit        atomic.Bool
	wg          sync.WaitGroup
}

// New starts a team with `threads` workers (the caller is an additional
// submitting/waiting thread, like an OpenMP master in a taskloop region).
func New(threads int) *Runtime {
	if threads < 1 {
		threads = 1
	}
	r := &Runtime{
		threads: threads,
		deps:    map[uint64]*depRecord{},
	}
	for t := 0; t < threads; t++ {
		r.wg.Add(1)
		go r.worker(t)
	}
	return r
}

// Submit registers a task with dependencies. Matching is OpenMP-style:
// a read depends on the last writer of each address; a write depends on the
// last writer and all readers since.
func (r *Runtime) Submit(deps []Dep, fn func(thread int)) {
	t := &task{fn: fn}
	r.outstanding.Add(1)
	r.mu.Lock()
	r.pending++
	for _, d := range deps {
		rec := r.deps[d.Addr]
		if rec == nil {
			rec = &depRecord{}
			r.deps[d.Addr] = rec
		}
		if d.Write {
			if rec.lastWriter != nil && !rec.lastWriter.done {
				t.ndeps++
				rec.lastWriter.succs = append(rec.lastWriter.succs, t)
			}
			for _, rd := range rec.readers {
				if !rd.done {
					t.ndeps++
					rd.succs = append(rd.succs, t)
				}
			}
			rec.lastWriter = t
			rec.readers = rec.readers[:0]
		} else {
			if rec.lastWriter != nil && !rec.lastWriter.done {
				t.ndeps++
				rec.lastWriter.succs = append(rec.lastWriter.succs, t)
			}
			rec.readers = append(rec.readers, t)
		}
	}
	if t.ndeps == 0 {
		r.queue = append(r.queue, t)
	}
	r.mu.Unlock()
}

// pop takes a ready task (under the team lock).
func (r *Runtime) pop() *task {
	r.mu.Lock()
	var t *task
	if len(r.queue) > 0 {
		t = r.queue[0]
		r.queue = r.queue[1:]
	}
	r.mu.Unlock()
	return t
}

// finish marks t complete and releases its successors.
func (r *Runtime) finish(t *task) {
	r.mu.Lock()
	t.done = true
	for _, s := range t.succs {
		s.ndeps--
		if s.ndeps == 0 {
			r.queue = append(r.queue, s)
		}
	}
	t.succs = nil
	r.pending--
	r.mu.Unlock()
	r.outstanding.Add(-1)
}

func (r *Runtime) worker(tid int) {
	defer r.wg.Done()
	spins := 0
	for {
		t := r.pop()
		if t == nil {
			if r.quit.Load() {
				return
			}
			spins++
			if spins%64 == 0 {
				runtime.Gosched()
			}
			continue
		}
		spins = 0
		t.fn(tid)
		r.finish(t)
	}
}

// Wait blocks until all submitted tasks have completed (the caller helps
// execute, like an OpenMP taskwait).
func (r *Runtime) Wait() {
	for r.outstanding.Load() != 0 {
		if t := r.pop(); t != nil {
			t.fn(r.threads) // master's thread id
			r.finish(t)
			continue
		}
		runtime.Gosched()
	}
	// Reclaim the dependence table between phases.
	r.mu.Lock()
	if r.pending == 0 {
		r.deps = map[uint64]*depRecord{}
	}
	r.mu.Unlock()
}

// Close shuts the team down after outstanding work completes.
func (r *Runtime) Close() {
	r.Wait()
	r.quit.Store(true)
	r.wg.Wait()
}
