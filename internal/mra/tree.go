package mra

import (
	"math"
	"sync"

	"gottg/internal/core"
	"gottg/internal/linalg"
)

// Gaussian is one test function: exp(-Expnt·|x-Center|²) over the domain
// cube [-L,L]³, normalized like the paper's MRA benchmark.
type Gaussian struct {
	Center [3]float64
	Expnt  float64
}

// Problem describes an MRA run: the paper computes the representation of
// NFunc 3D Gaussians (exponent 30000, centers random in [-6,6]³) to a given
// precision with order-10 multiwavelets.
type Problem struct {
	K        int     // multiwavelet order (paper: 10)
	Tol      float64 // refinement tolerance on the wavelet norm (paper: 1e-8)
	MaxLevel int     // refinement depth cap
	L        float64 // half-width of the domain cube (paper: 6)
	Funcs    []Gaussian
}

// DefaultProblem builds a problem with nf Gaussians at deterministic
// pseudo-random centers. The defaults (k=6, tol=1e-4, expnt=1000) are a
// laptop-scale stand-in for the paper's k=10/1e-8/30000; flags on cmd/mra
// restore paper scale.
func DefaultProblem(nf int) *Problem {
	p := &Problem{K: 6, Tol: 1e-4, MaxLevel: 8, L: 6}
	rng := uint64(42)
	next := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return float64(rng%100000)/100000*10 - 5 // [-5,5], inside the box
	}
	for i := 0; i < nf; i++ {
		p.Funcs = append(p.Funcs, Gaussian{
			Center: [3]float64{next(), next(), next()},
			Expnt:  1000,
		})
	}
	return p
}

// UnitEval returns function fi evaluated in unit-cube coordinates: the
// domain cube [-L,L]³ is mapped affinely onto [0,1]³.
func (p *Problem) UnitEval(fi int) func(x, y, z float64) float64 {
	g := p.Funcs[fi]
	side := 2 * p.L
	// Coefficient normalization (2a/π)^{3/4} as in MADNESS test functions.
	fac := math.Pow(2*g.Expnt/math.Pi, 0.75)
	return func(x, y, z float64) float64 {
		dx := x*side - p.L - g.Center[0]
		dy := y*side - p.L - g.Center[1]
		dz := z*side - p.L - g.Center[2]
		return fac * math.Exp(-g.Expnt*(dx*dx+dy*dy+dz*dz))
	}
}

// Node is one octree node's stored state. Exactly one task writes each node
// in each phase, so plain fields suffice under the sync.Map.
type Node struct {
	// Leaf scaling coefficients (projection output; reconstruct verifies).
	S    linalg.Cube
	Leaf bool
	HasS bool
	// Interior state written by compress: per-child residuals.
	D    [8]linalg.Cube
	HasD bool
	// Reconstructed leaf coefficients (reconstruction output).
	R    linalg.Cube
	HasR bool
}

// Forest stores all functions' octrees.
type Forest struct {
	nodes sync.Map // key (core.Pack4D) -> *Node
}

// get returns the node for key, creating it if absent.
func (f *Forest) get(key uint64) *Node {
	if v, ok := f.nodes.Load(key); ok {
		return v.(*Node)
	}
	v, _ := f.nodes.LoadOrStore(key, &Node{})
	return v.(*Node)
}

// Range iterates every (key, node) pair until fn returns false.
func (f *Forest) Range(fn func(key uint64, n *Node) bool) {
	f.nodes.Range(func(k, v any) bool { return fn(k.(uint64), v.(*Node)) })
}

// Lookup returns the node for key, or nil.
func (f *Forest) Lookup(key uint64) *Node {
	if v, ok := f.nodes.Load(key); ok {
		return v.(*Node)
	}
	return nil
}

// Stats summarizes a forest.
type Stats struct {
	Leaves, Interior int
	MaxDepth         int
	SNorm2           float64 // Σ over leaves of ||s||²
}

// Stats scans the forest.
func (f *Forest) Stats() Stats {
	var st Stats
	f.nodes.Range(func(k, v any) bool {
		n := v.(*Node)
		_, lvl, _, _, _ := core.Unpack4D(k.(uint64))
		if int(lvl) > st.MaxDepth {
			st.MaxDepth = int(lvl)
		}
		if n.Leaf {
			st.Leaves++
			nn := n.S.Norm()
			st.SNorm2 += nn * nn
		} else if n.HasD {
			st.Interior++
		}
		return true
	})
	return st
}
