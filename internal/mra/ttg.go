package mra

import (
	"time"

	"gottg/internal/core"
	"gottg/internal/linalg"
	"gottg/internal/rt"
)

// cubeMsg is the datum flowing up (compress) and down (reconstruct) the
// tree: a coefficient cube tagged with which child of the destination node
// it belongs to.
type cubeMsg struct {
	Child int
	S     linalg.Cube
}

// Graph wires the three-phase MRA computation as a TTG:
//
//	Project  (control flow, self-edge fan-out over the octree)
//	Compress (aggregator terminal: 8 child cubes flow up)
//	Reconstruct (cube flows down, residuals re-applied)
//
// All three phases of all functions execute concurrently under full
// data-flow semantics: a subtree starts compressing as soon as its leaves
// exist, even while distant subtrees still project.
type Graph struct {
	P      *Problem
	B      *Basis
	Forest *Forest

	g        *core.Graph
	project  *core.TT
	compress *core.TT
	recon    *core.TT
}

const (
	outProjectSelf = 0 // Project -> Project (refine children)
	outProjectUp   = 1 // Project -> Compress (accepted node's parent-s)
	outProjectRoot = 2 // Project -> Reconstruct (root accepted immediately)
	outCompressUp  = 0 // Compress -> Compress
	outCompressDn  = 1 // Compress -> Reconstruct (root reached)
	outReconDn     = 0 // Reconstruct -> Reconstruct
)

// parentKeyAndChild returns the compress destination for node (fi,n,l): the
// parent's key and this node's child index within it.
func parentKeyAndChild(key uint64) (uint64, int) {
	f, n, lx, ly, lz := core.Unpack4D(key)
	ci := int(lx&1)<<2 | int(ly&1)<<1 | int(lz&1)
	return core.Pack4D(f, n-1, lx/2, ly/2, lz/2), ci
}

// NewGraph builds the MRA TTG over an existing core graph (so callers
// control the runtime configuration and can embed it in larger programs).
func NewGraph(g *core.Graph, p *Problem, b *Basis, fo *Forest) *Graph {
	m := &Graph{P: p, B: b, Forest: fo, g: g}

	eProject := core.NewEdge("mra.project")
	eCompress := core.NewEdge("mra.compress")
	eRecon := core.NewEdge("mra.reconstruct")

	project := g.NewTT("mra.Project", 1, 3, func(tc core.TaskContext) {
		m.projectBody(tc)
	}).WithPriority(func(key uint64) int32 {
		_, n, _, _, _ := core.Unpack4D(key)
		return int32(n) // deeper first: chase the refinement frontier
	})

	compress := g.NewTT("mra.Compress", 1, 2, func(tc core.TaskContext) {
		m.compressBody(tc)
	}).WithAggregator(0, func(uint64) int { return 8 }).
		WithPriority(func(key uint64) int32 {
			_, n, _, _, _ := core.Unpack4D(key)
			return 64 + int32(n) // compress outranks projection: shrink memory
		})

	recon := g.NewTT("mra.Reconstruct", 1, 1, func(tc core.TaskContext) {
		m.reconBody(tc)
	})

	project.Out(outProjectSelf, eProject)
	project.Out(outProjectUp, eCompress)
	project.Out(outProjectRoot, eRecon)
	compress.Out(outCompressUp, eCompress)
	compress.Out(outCompressDn, eRecon)
	recon.Out(outReconDn, eRecon)
	eProject.To(project, 0)
	eCompress.To(compress, 0)
	eRecon.To(recon, 0)

	m.project = project
	m.compress = compress
	m.recon = recon
	return m
}

// Seed invokes the projection roots for every function. Call between
// MakeExecutable and Wait.
func (m *Graph) Seed() {
	for fi := range m.P.Funcs {
		m.g.InvokeControl(m.project, core.Pack4D(uint8(fi), 0, 0, 0, 0))
	}
}

func (m *Graph) projectBody(tc core.TaskContext) {
	key := tc.Key()
	fi8, n8, lx, ly, lz := core.Unpack4D(key)
	fi, n := int(fi8), int(n8)
	p, b, fo := m.P, m.B, m.Forest
	f := p.UnitEval(fi)

	var cs [8]linalg.Cube
	for c := 0; c < 8; c++ {
		cs[c] = b.ProjectBox(f, n+1,
			lx*2+uint32(c>>2&1), ly*2+uint32(c>>1&1), lz*2+uint32(c&1))
	}
	parent, d, norm := b.FilterResiduals(&cs)
	if (norm <= p.Tol && !p.needSpecial(fi, n, lx, ly, lz)) || n+1 > p.MaxLevel {
		// Accept: children become leaves; this node's compress output is
		// already known (parent s + residuals).
		for c := 0; c < 8; c++ {
			cKey := core.Pack4D(fi8, n8+1,
				lx*2+uint32(c>>2&1), ly*2+uint32(c>>1&1), lz*2+uint32(c&1))
			nd := fo.get(cKey)
			nd.S = cs[c]
			nd.Leaf = true
			nd.HasS = true
		}
		nd := fo.get(key)
		nd.D = d
		nd.HasD = true
		nd.S = parent
		nd.HasS = true
		if n == 0 {
			tc.Send(outProjectRoot, key, &cubeMsg{S: parent})
			return
		}
		pKey, ci := parentKeyAndChild(key)
		tc.Send(outProjectUp, pKey, &cubeMsg{Child: ci, S: parent})
		return
	}
	// Refine into the 8 children.
	for c := 0; c < 8; c++ {
		tc.SendControl(outProjectSelf, core.Pack4D(fi8, n8+1,
			lx*2+uint32(c>>2&1), ly*2+uint32(c>>1&1), lz*2+uint32(c&1)))
	}
}

func (m *Graph) compressBody(tc core.TaskContext) {
	key := tc.Key()
	_, n, _, _, _ := core.Unpack4D(key)
	agg := tc.Aggregate(0)
	var cs [8]linalg.Cube
	for i := 0; i < agg.Len(); i++ {
		msg := agg.Value(i).(*cubeMsg)
		cs[msg.Child] = msg.S
	}
	parent, d, _ := m.B.FilterResiduals(&cs)
	nd := m.Forest.get(key)
	nd.D = d
	nd.HasD = true
	nd.S = parent
	nd.HasS = true
	if n == 0 {
		tc.Send(outCompressDn, key, &cubeMsg{S: parent})
		return
	}
	pKey, ci := parentKeyAndChild(key)
	tc.Send(outCompressUp, pKey, &cubeMsg{Child: ci, S: parent})
}

func (m *Graph) reconBody(tc core.TaskContext) {
	key := tc.Key()
	fi8, n8, lx, ly, lz := core.Unpack4D(key)
	s := tc.Value(0).(*cubeMsg).S
	nd := m.Forest.Lookup(key)
	if nd == nil || (!nd.Leaf && !nd.HasD) {
		if m.g.FaultTolerant() {
			// After a rank failure this node's keys may have been re-homed
			// here while the project/compress re-execution that materializes
			// the node is still in flight — the reconstruct wave can overtake
			// it, since the original compress phase already completed before
			// the owner died. Requeue to a fresh instance of this same task
			// until the recovered state catches up (self-requeues are exempt
			// from duplicate suppression and strictly local).
			time.Sleep(20 * time.Microsecond)
			tc.Send(outReconDn, key, &cubeMsg{S: s})
			return
		}
		// Every reconstruct target must exist locally: leaves and interior
		// nodes are stored on the rank that owns them. Reaching an unknown
		// node means the distribution placed data and tasks inconsistently
		// (see Distribute's accept-at-root caveat).
		panic("mra: reconstruct reached an unknown node")
	}
	if nd.Leaf {
		nd.R = s
		nd.HasR = true
		return
	}
	for c := 0; c < 8; c++ {
		sc := m.B.Unfilter(s, c)
		if nd != nil && nd.HasD {
			sc.AddScaled(1, nd.D[c])
		}
		cKey := core.Pack4D(fi8, n8+1,
			lx*2+uint32(c>>2&1), ly*2+uint32(c>>1&1), lz*2+uint32(c&1))
		tc.Send(outReconDn, cKey, &cubeMsg{S: sc})
	}
}

// Result summarizes a run.
type Result struct {
	Elapsed  time.Duration
	Tasks    int64
	Stats    Stats
	Workers  int
	SchedNam string
}

// Run executes the full three-phase MRA computation for p under cfg and
// returns the forest plus run statistics. This is the Fig. 12 workload.
func Run(p *Problem, cfg rt.Config) (*Forest, Result) {
	return run(p, cfg, nil)
}

// RunTraced is Run with per-task execution tracing enabled; after the run
// completes, sink receives the graph (dump with
// g.Runtime().WriteChromeTrace or inspect g.Runtime().Trace()).
func RunTraced(p *Problem, cfg rt.Config, sink func(g *core.Graph)) (*Forest, Result) {
	return runSink(p, cfg, sink, false)
}

// RunCausal is RunTraced with causal tracing on: recorded spans carry
// producer links, so sink can feed g.Runtime().Trace() into
// internal/obs/critpath for critical-path analysis and flow export.
func RunCausal(p *Problem, cfg rt.Config, sink func(g *core.Graph)) (*Forest, Result) {
	return runSink(p, cfg, sink, true)
}

func run(p *Problem, cfg rt.Config, sink func(g *core.Graph)) (*Forest, Result) {
	return runSink(p, cfg, sink, false)
}

func runSink(p *Problem, cfg rt.Config, sink func(g *core.Graph), causal bool) (*Forest, Result) {
	b := NewBasis(p.K)
	fo := &Forest{}
	g := core.New(cfg)
	m := NewGraph(g, p, b, fo)
	if causal {
		g.EnableCausalTracing()
	} else if sink != nil {
		g.EnableTracing()
	}
	g.MakeExecutable()
	t0 := time.Now()
	m.Seed()
	g.Wait()
	elapsed := time.Since(t0)
	exec, _, _ := g.Runtime().Stats()
	if sink != nil {
		sink(g)
	}
	return fo, Result{
		Elapsed:  elapsed,
		Tasks:    exec,
		Stats:    fo.Stats(),
		Workers:  g.Runtime().Config().Workers,
		SchedNam: g.Runtime().SchedulerName(),
	}
}
