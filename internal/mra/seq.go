package mra

import (
	"math"

	"gottg/internal/core"
	"gottg/internal/linalg"
)

// sigmaUnit returns the Gaussian's standard deviation in unit-cube
// coordinates.
func (p *Problem) sigmaUnit(fi int) float64 {
	return 1 / math.Sqrt(2*p.Funcs[fi].Expnt) / (2 * p.L)
}

// needSpecial reports whether the box (n; l) must refine regardless of the
// residual because it contains function fi's center and the quadrature grid
// cannot yet resolve the peak — the analogue of MADNESS's special-points
// refinement for sharp functions. Without it, coarse-level quadrature can
// miss a narrow Gaussian entirely and the tree silently collapses to zero.
func (p *Problem) needSpecial(fi, n int, lx, ly, lz uint32) bool {
	if n >= p.MaxLevel {
		return false
	}
	h := 1.0 / float64(uint64(1)<<uint(n))
	c := p.Funcs[fi].Center
	for d := 0; d < 3; d++ {
		u := (c[d] + p.L) / (2 * p.L) // center in unit coords
		lo := float64([3]uint32{lx, ly, lz}[d]) * h
		if u < lo || u >= lo+h {
			return false
		}
	}
	return h/float64(p.K) > p.sigmaUnit(fi)/2
}

// ProjectSeq projects function fi into forest fo sequentially (the
// reference implementation the TTG run is validated against). Returns the
// number of project tasks an equivalent task-based run would execute.
func (p *Problem) ProjectSeq(b *Basis, fo *Forest, fi int) int {
	f := p.UnitEval(fi)
	tasks := 0
	var rec func(n int, lx, ly, lz uint32)
	rec = func(n int, lx, ly, lz uint32) {
		tasks++
		var cs [8]linalg.Cube
		for c := 0; c < 8; c++ {
			cx := lx*2 + uint32(c>>2&1)
			cy := ly*2 + uint32(c>>1&1)
			cz := lz*2 + uint32(c&1)
			cs[c] = b.ProjectBox(f, n+1, cx, cy, cz)
		}
		_, _, norm := b.FilterResiduals(&cs)
		if (norm <= p.Tol && !p.needSpecial(fi, n, lx, ly, lz)) || n+1 > p.MaxLevel {
			// Accept: the 8 children become leaves.
			for c := 0; c < 8; c++ {
				cx := lx*2 + uint32(c>>2&1)
				cy := ly*2 + uint32(c>>1&1)
				cz := lz*2 + uint32(c&1)
				nd := fo.get(core.Pack4D(uint8(fi), uint8(n+1), cx, cy, cz))
				nd.S = cs[c]
				nd.Leaf = true
				nd.HasS = true
			}
			return
		}
		for c := 0; c < 8; c++ {
			rec(n+1, lx*2+uint32(c>>2&1), ly*2+uint32(c>>1&1), lz*2+uint32(c&1))
		}
	}
	rec(0, 0, 0, 0)
	return tasks
}

// CompressSeq runs the upward pass sequentially for function fi: interior
// nodes get their per-child residuals and the root's scaling coefficients
// are returned.
func (p *Problem) CompressSeq(b *Basis, fo *Forest, fi int) linalg.Cube {
	var up func(n int, lx, ly, lz uint32) linalg.Cube
	up = func(n int, lx, ly, lz uint32) linalg.Cube {
		key := core.Pack4D(uint8(fi), uint8(n), lx, ly, lz)
		if nd := fo.Lookup(key); nd != nil && nd.Leaf {
			return nd.S
		}
		var cs [8]linalg.Cube
		for c := 0; c < 8; c++ {
			cs[c] = up(n+1, lx*2+uint32(c>>2&1), ly*2+uint32(c>>1&1), lz*2+uint32(c&1))
		}
		parent, d, _ := b.FilterResiduals(&cs)
		nd := fo.get(key)
		nd.D = d
		nd.HasD = true
		nd.S = parent
		nd.HasS = true
		return parent
	}
	return up(0, 0, 0, 0)
}

// ReconstructSeq runs the downward pass sequentially, writing reconstructed
// leaf coefficients (Node.R).
func (p *Problem) ReconstructSeq(b *Basis, fo *Forest, fi int, root linalg.Cube) {
	var down func(n int, lx, ly, lz uint32, s linalg.Cube)
	down = func(n int, lx, ly, lz uint32, s linalg.Cube) {
		key := core.Pack4D(uint8(fi), uint8(n), lx, ly, lz)
		nd := fo.Lookup(key)
		if nd != nil && nd.Leaf {
			nd.R = s
			nd.HasR = true
			return
		}
		for c := 0; c < 8; c++ {
			sc := b.Unfilter(s, c)
			if nd != nil && nd.HasD {
				sc.AddScaled(1, nd.D[c])
			}
			down(n+1, lx*2+uint32(c>>2&1), ly*2+uint32(c>>1&1), lz*2+uint32(c&1), sc)
		}
	}
	down(0, 0, 0, 0, root)
}

// Eval evaluates the projected representation at unit point (x,y,z) by
// descending to the containing leaf.
func (p *Problem) Eval(b *Basis, fo *Forest, fi int, x, y, z float64) float64 {
	n := 0
	var lx, ly, lz uint32
	for {
		key := core.Pack4D(uint8(fi), uint8(n), lx, ly, lz)
		if nd := fo.Lookup(key); nd != nil && nd.Leaf {
			return b.EvalBox(nd.S, n, lx, ly, lz, x, y, z)
		}
		if n > p.MaxLevel+1 {
			return 0
		}
		h := 1.0 / float64(uint64(1)<<uint(n+1))
		lx, ly, lz = lx*2, ly*2, lz*2
		if x >= (float64(lx)+1)*h {
			lx++
		}
		if y >= (float64(ly)+1)*h {
			ly++
		}
		if z >= (float64(lz)+1)*h {
			lz++
		}
		n++
	}
}
