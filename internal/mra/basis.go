// Package mra implements the multi-resolution analysis mini-app of paper
// §V-E: the order-k multiwavelet representation of 3D Gaussian functions on
// an adaptive octree, computed in three passes — projection (fan-out),
// compression (fan-in 8, flowing data up the tree), and reconstruction
// (flowing data back down) — expressed as a TTG graph whose tasks are small
// tensor transforms (GEMMs on k×k blocks).
//
// Substitution note (see DESIGN.md): where MADNESS stores wavelet
// difference coefficients in Alpert's explicit multiwavelet basis, we store
// the equivalent projection residuals (child scaling coefficients minus the
// parent's reconstruction). The refinement criterion, task structure, FLOP
// profile, and the exactness of compress∘reconstruct are identical; only
// the basis in which W_n is expressed differs.
package mra

import (
	"math"

	"gottg/internal/linalg"
)

// Basis holds the order-k multiwavelet machinery: quadrature, scaling
// function values at quadrature points, and the two-scale filter matrices.
type Basis struct {
	K int

	// QuadX, QuadW are the k-point Gauss-Legendre nodes/weights on [0,1].
	QuadX, QuadW []float64

	// PhiW[i*K+m] = phi_i(x_m)·w_m — projection transform (applied per
	// dimension turns function samples into scaling coefficients).
	PhiW linalg.Matrix

	// Phi[i*K+m] = phi_i(x_m) — evaluation transform.
	Phi linalg.Matrix

	// H0, H1 are the two-scale filters: s^n_i = Σ_j H0[i,j]·s^{n+1}_{2l,j}
	// + H1[i,j]·s^{n+1}_{2l+1,j}. H0T/H1T are their transposes (unfilter).
	H0, H1, H0T, H1T linalg.Matrix
}

// NewBasis constructs the order-k basis (k >= 1; the paper uses k = 10).
func NewBasis(k int) *Basis {
	b := &Basis{K: k}
	b.QuadX, b.QuadW = linalg.GaussLegendre(k)
	b.PhiW = linalg.NewMatrix(k, k)
	b.Phi = linalg.NewMatrix(k, k)
	for i := 0; i < k; i++ {
		for m := 0; m < k; m++ {
			v := linalg.ScalingFn(i, b.QuadX[m])
			b.Phi.Set(i, m, v)
			b.PhiW.Set(i, m, v*b.QuadW[m])
		}
	}
	// Two-scale filters by quadrature:
	//   H0[i,j] = sqrt(2)·∫_0^{1/2} phi_i(x)·phi_j(2x) dx
	//           = (sqrt(2)/2)·Σ_m w_m·phi_i(x_m/2)·phi_j(x_m)
	// and H1 with phi_i((x_m+1)/2). Integrands are polynomials of degree
	// <= 2k-2, so the k-point rule is exact.
	b.H0 = linalg.NewMatrix(k, k)
	b.H1 = linalg.NewMatrix(k, k)
	c := math.Sqrt2 / 2
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			var s0, s1 float64
			for m := 0; m < k; m++ {
				pj := linalg.ScalingFn(j, b.QuadX[m])
				s0 += b.QuadW[m] * linalg.ScalingFn(i, b.QuadX[m]/2) * pj
				s1 += b.QuadW[m] * linalg.ScalingFn(i, (b.QuadX[m]+1)/2) * pj
			}
			b.H0.Set(i, j, c*s0)
			b.H1.Set(i, j, c*s1)
		}
	}
	b.H0T = b.H0.Transpose()
	b.H1T = b.H1.Transpose()
	return b
}

// childFilters returns the (H_x, H_y, H_z) filter triple for child c of a
// node, where bit 2/1/0 of c selects the x/y/z half.
func (b *Basis) childFilters(c int) (hx, hy, hz linalg.Matrix) {
	pick := func(bit int) linalg.Matrix {
		if c&bit != 0 {
			return b.H1
		}
		return b.H0
	}
	return pick(4), pick(2), pick(1)
}

// childFiltersT returns the transposed triple (unfilter direction).
func (b *Basis) childFiltersT(c int) (hx, hy, hz linalg.Matrix) {
	pick := func(bit int) linalg.Matrix {
		if c&bit != 0 {
			return b.H1T
		}
		return b.H0T
	}
	return pick(4), pick(2), pick(1)
}

// Filter computes the parent scaling coefficients from the 8 children:
// s_parent = Σ_c (H_cx ⊗ H_cy ⊗ H_cz)·s_c.
func (b *Basis) Filter(children *[8]linalg.Cube) linalg.Cube {
	k := b.K
	parent := linalg.NewCube(k)
	out, scratch := linalg.NewCube(k), linalg.NewCube(k)
	for c := 0; c < 8; c++ {
		hx, hy, hz := b.childFilters(c)
		linalg.Transform3D(children[c], hx, hy, hz, out, scratch)
		parent.AddScaled(1, out)
	}
	return parent
}

// Unfilter computes child c's scaling coefficients implied by the parent
// alone: s_c' = (H_cxᵀ ⊗ H_cyᵀ ⊗ H_czᵀ)·s_parent.
func (b *Basis) Unfilter(parent linalg.Cube, c int) linalg.Cube {
	out, scratch := linalg.NewCube(b.K), linalg.NewCube(b.K)
	hx, hy, hz := b.childFiltersT(c)
	linalg.Transform3D(parent, hx, hy, hz, out, scratch)
	return out
}

// FilterResiduals filters the children into (parent s, per-child residuals
// d_c = s_c − Unfilter(parent, c)) and the Frobenius norm of the residual —
// the wavelet-coefficient norm driving refinement.
func (b *Basis) FilterResiduals(children *[8]linalg.Cube) (parent linalg.Cube, d [8]linalg.Cube, norm float64) {
	parent = b.Filter(children)
	var sum float64
	for c := 0; c < 8; c++ {
		d[c] = children[c].Clone()
		d[c].AddScaled(-1, b.Unfilter(parent, c))
		n := d[c].Norm()
		sum += n * n
	}
	return parent, d, math.Sqrt(sum)
}

// ProjectBox computes the scaling coefficients of f on box (n; lx,ly,lz) of
// the unit cube by k³-point tensor quadrature — the mini-app's dominant
// GEMM workload.
func (b *Basis) ProjectBox(f func(x, y, z float64) float64, n int, lx, ly, lz uint32) linalg.Cube {
	k := b.K
	h := 1.0 / float64(uint64(1)<<uint(n))
	x0, y0, z0 := float64(lx)*h, float64(ly)*h, float64(lz)*h
	vals := linalg.NewCube(k)
	for m := 0; m < k; m++ {
		xm := x0 + b.QuadX[m]*h
		for p := 0; p < k; p++ {
			yp := y0 + b.QuadX[p]*h
			for q := 0; q < k; q++ {
				vals.Set(m, p, q, f(xm, yp, z0+b.QuadX[q]*h))
			}
		}
	}
	out, scratch := linalg.NewCube(k), linalg.NewCube(k)
	linalg.Transform3D(vals, b.PhiW, b.PhiW, b.PhiW, out, scratch)
	// Scale by the box volume measure 2^{-3n/2}: each dimension carries
	// h^{1/2}·h^{1/2}... explicitly: s = h^{3/2}·Σ w·f·phi scaled per dim by
	// h (substitution dx = h·dt) divided by h^{1/2} (basis normalization
	// 2^{n/2}), i.e. h^{1/2} per dimension.
	scale := math.Pow(h, 1.5)
	for i := range out.Data {
		out.Data[i] *= scale
	}
	return out
}

// EvalBox evaluates the representation s on box (n; l) at unit-cube point
// (x,y,z) inside the box.
func (b *Basis) EvalBox(s linalg.Cube, n int, lx, ly, lz uint32, x, y, z float64) float64 {
	h := 1.0 / float64(uint64(1)<<uint(n))
	ux := (x - float64(lx)*h) / h
	uy := (y - float64(ly)*h) / h
	uz := (z - float64(lz)*h) / h
	k := b.K
	px := make([]float64, k)
	py := make([]float64, k)
	pz := make([]float64, k)
	for i := 0; i < k; i++ {
		px[i] = linalg.ScalingFn(i, ux)
		py[i] = linalg.ScalingFn(i, uy)
		pz[i] = linalg.ScalingFn(i, uz)
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			for l := 0; l < k; l++ {
				sum += s.At(i, j, l) * px[i] * py[j] * pz[l]
			}
		}
	}
	// 2^{3n/2} basis normalization = h^{-3/2}.
	return sum / math.Pow(h, 1.5)
}
