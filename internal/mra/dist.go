package mra

import (
	"encoding/binary"
	"errors"
	"math"

	"gottg/internal/core"
	"gottg/internal/linalg"
)

// cubeCodec is the wire codec for *cubeMsg: [8B child][8B k][8B·k³ data],
// little-endian. Cube payloads dominate MRA's cross-rank traffic, and the
// fixed layout encodes straight into the pooled batch buffer — no gob, no
// reflection, no per-send allocation.
type cubeCodec struct{}

func (cubeCodec) Encode(buf []byte, v any) []byte {
	m := v.(*cubeMsg)
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(m.Child))
	binary.LittleEndian.PutUint64(b[8:], uint64(m.S.K))
	buf = append(buf, b[:]...)
	for _, f := range m.S.Data {
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], math.Float64bits(f))
		buf = append(buf, w[:]...)
	}
	return buf
}

func (cubeCodec) Decode(b []byte) (any, error) {
	if len(b) < 16 {
		return nil, errors.New("mra: cube payload too short")
	}
	child := int(int64(binary.LittleEndian.Uint64(b[0:])))
	k := int(int64(binary.LittleEndian.Uint64(b[8:])))
	if k < 0 || k > 1<<10 || len(b) != 16+8*k*k*k {
		return nil, errors.New("mra: cube payload size does not match k")
	}
	data := make([]float64, k*k*k)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[16+8*i:]))
	}
	return &cubeMsg{Child: child, S: linalg.Cube{K: k, Data: data}}, nil
}

// Distribute partitions the MRA computation across `ranks` simulated
// processes: the octree root of each function lives on rank f mod ranks,
// and every deeper node on the rank owning its level-1 octant (mixed with
// the function id). Subtrees below level 1 are therefore rank-local, while
// the root's project fan-out, compress fan-in and reconstruct fan-out all
// cross rank boundaries — serialized coefficient cubes over the comm
// substrate, the paper's seamless shared→distributed transition for a real
// application.
//
// Must be called before the graph becomes executable. The caller guarantees
// the root always refines (true for the Gaussian problems here, whose
// special-points rule forces refinement at the coarse levels); otherwise
// level-1 leaves would be stored on the root's rank while their
// reconstruct tasks run on the octant ranks.
func (m *Graph) Distribute(ranks int) {
	core.RegisterPayload(&cubeMsg{})
	core.RegisterPayload(linalg.Cube{})
	core.RegisterCodec(&cubeMsg{}, cubeCodec{}) // idempotent: re-register keeps the wire id
	mapper := func(key uint64) int { return octantRank(key, ranks) }
	m.project.WithMapper(mapper)
	m.compress.WithMapper(mapper)
	m.recon.WithMapper(mapper)
}

// octantRank maps a node key to its owning rank.
func octantRank(key uint64, ranks int) int {
	f, n, x, y, z := core.Unpack4D(key)
	if n == 0 {
		return int(f) % ranks
	}
	shift := uint(n - 1)
	oct := (x>>shift&1)<<2 | (y>>shift&1)<<1 | (z >> shift & 1)
	return (int(f)*8 + int(oct)) % ranks
}
