package mra

import (
	"gottg/internal/core"
	"gottg/internal/linalg"
)

// Distribute partitions the MRA computation across `ranks` simulated
// processes: the octree root of each function lives on rank f mod ranks,
// and every deeper node on the rank owning its level-1 octant (mixed with
// the function id). Subtrees below level 1 are therefore rank-local, while
// the root's project fan-out, compress fan-in and reconstruct fan-out all
// cross rank boundaries — serialized coefficient cubes over the comm
// substrate, the paper's seamless shared→distributed transition for a real
// application.
//
// Must be called before the graph becomes executable. The caller guarantees
// the root always refines (true for the Gaussian problems here, whose
// special-points rule forces refinement at the coarse levels); otherwise
// level-1 leaves would be stored on the root's rank while their
// reconstruct tasks run on the octant ranks.
func (m *Graph) Distribute(ranks int) {
	core.RegisterPayload(&cubeMsg{})
	core.RegisterPayload(linalg.Cube{})
	mapper := func(key uint64) int { return octantRank(key, ranks) }
	m.project.WithMapper(mapper)
	m.compress.WithMapper(mapper)
	m.recon.WithMapper(mapper)
}

// octantRank maps a node key to its owning rank.
func octantRank(key uint64, ranks int) int {
	f, n, x, y, z := core.Unpack4D(key)
	if n == 0 {
		return int(f) % ranks
	}
	shift := uint(n - 1)
	oct := (x>>shift&1)<<2 | (y>>shift&1)<<1 | (z >> shift & 1)
	return (int(f)*8 + int(oct)) % ranks
}
