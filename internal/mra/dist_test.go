package mra

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"gottg/internal/comm"
	"gottg/internal/core"
	"gottg/internal/rt"
)

func TestOctantRankConsistency(t *testing.T) {
	// All nodes of a level-1 subtree must map to the same rank as their
	// level-1 ancestor (data/task placement consistency).
	for _, ranks := range []int{2, 3, 4} {
		for f := uint8(0); f < 4; f++ {
			for oct := uint32(0); oct < 8; oct++ {
				ox, oy, oz := oct>>2&1, oct>>1&1, oct&1
				own := octantRank(core.Pack4D(f, 1, ox, oy, oz), ranks)
				// Descend a few levels inside the octant.
				x, y, z := ox, oy, oz
				for n := uint8(2); n <= 5; n++ {
					x, y, z = x*2+1, y*2, z*2+1
					if x >= 1<<n {
						x = 1<<n - 1
					}
					got := octantRank(core.Pack4D(f, n, x, y, z), ranks)
					if got != own {
						t.Fatalf("ranks=%d f=%d oct=%d level %d maps to %d, ancestor to %d",
							ranks, f, oct, n, got, own)
					}
				}
			}
		}
	}
}

func TestDistributedMRAMatchesShared(t *testing.T) {
	p := smallProblem(2)
	// Shared-memory reference run.
	_, sharedRes := Run(p, ttgCfg(2))

	const ranks = 4
	world := comm.NewWorld(ranks)
	forests := make([]*Forest, ranks)
	graphs := make([]*core.Graph, ranks)
	mras := make([]*Graph, ranks)
	b := NewBasis(p.K)
	for r := 0; r < ranks; r++ {
		forests[r] = &Forest{}
		cfg := rt.OptimizedConfig(1)
		cfg.PinWorkers = false
		graphs[r] = core.NewDistributed(cfg, world.Proc(r))
		mras[r] = NewGraph(graphs[r], p, b, forests[r])
		mras[r].Distribute(ranks)
	}
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			graphs[r].MakeExecutable()
			mras[r].Seed() // SPMD: every rank seeds; owners keep
			graphs[r].Wait()
		}(r)
	}
	wg.Wait()
	world.Shutdown()

	// Aggregate rank-local forests and compare with the shared run.
	var total Stats
	leavesReconstructed := 0
	badRecon := 0
	for r := 0; r < ranks; r++ {
		st := forests[r].Stats()
		total.Leaves += st.Leaves
		total.Interior += st.Interior
		total.SNorm2 += st.SNorm2
		if st.MaxDepth > total.MaxDepth {
			total.MaxDepth = st.MaxDepth
		}
		forests[r].Range(func(_ uint64, nd *Node) bool {
			if nd.Leaf && nd.HasR {
				leavesReconstructed++
				for i := range nd.S.Data {
					if math.Abs(nd.S.Data[i]-nd.R.Data[i]) > 1e-9 {
						badRecon++
						return false
					}
				}
			}
			return true
		})
	}
	want := sharedRes.Stats
	if total.Leaves != want.Leaves || total.Interior != want.Interior || total.MaxDepth != want.MaxDepth {
		t.Fatalf("distributed tree %+v differs from shared %+v", total, want)
	}
	if math.Abs(total.SNorm2-want.SNorm2) > 1e-9*(1+want.SNorm2) {
		t.Fatalf("coefficient norms differ: %v vs %v", total.SNorm2, want.SNorm2)
	}
	if leavesReconstructed != want.Leaves {
		t.Fatalf("reconstructed %d of %d leaves", leavesReconstructed, want.Leaves)
	}
	if badRecon != 0 {
		t.Fatalf("%d leaves reconstructed incorrectly", badRecon)
	}
}

func TestDistributedMRASurvivesRankFailure(t *testing.T) {
	// Kill one rank mid-run; the survivors must re-home its octants,
	// re-execute its tasks from the replayed seeds and in-flight data, and
	// produce a tree identical to the shared-memory run. The victim's
	// rank-local forest is discarded (its state is partial), so aggregation
	// runs over survivors only. Replay pruning stays OFF: MRA tasks have
	// rank-local side effects (forest nodes) that die with the rank, so
	// consumed inputs must stay replayable.
	p := smallProblem(2)
	_, sharedRes := Run(p, ttgCfg(2))

	const (
		ranks  = 4
		victim = 1
	)
	world := comm.NewWorld(ranks)
	world.EnableFailureDetection(comm.FDConfig{SuspectAfter: 400 * time.Millisecond})
	forests := make([]*Forest, ranks)
	graphs := make([]*core.Graph, ranks)
	mras := make([]*Graph, ranks)
	b := NewBasis(p.K)
	for r := 0; r < ranks; r++ {
		forests[r] = &Forest{}
		cfg := rt.OptimizedConfig(1)
		cfg.PinWorkers = false
		graphs[r] = core.NewDistributed(cfg, world.Proc(r))
		graphs[r].EnableFaultTolerance()
		mras[r] = NewGraph(graphs[r], p, b, forests[r])
		mras[r].Distribute(ranks)
	}

	stop := make(chan struct{})
	go func() {
		vr := graphs[victim].Runtime()
		for {
			select {
			case <-stop:
				return
			case <-time.After(100 * time.Microsecond):
			}
			if exec, _, _ := vr.Stats(); exec >= 5 {
				world.KillRank(victim)
				return
			}
		}
	}()

	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			graphs[r].MakeExecutable()
			mras[r].Seed() // SPMD: every rank seeds; owners keep
			errs[r] = graphs[r].Wait()
		}(r)
	}
	wg.Wait()
	close(stop)
	deaths := world.Deaths()
	world.Shutdown()

	if !errors.Is(errs[victim], core.ErrRankKilled) {
		t.Fatalf("victim Wait() = %v, want ErrRankKilled", errs[victim])
	}
	for r := 0; r < ranks; r++ {
		if r != victim && errs[r] != nil {
			t.Fatalf("survivor rank %d Wait() = %v", r, errs[r])
		}
	}
	if deaths != 1 {
		t.Fatalf("confirmed %d deaths, want 1", deaths)
	}
	var reexec int64
	for r := 0; r < ranks; r++ {
		if r == victim {
			continue
		}
		re, _, _ := graphs[r].RecoveryStats()
		reexec += re
	}
	if reexec == 0 {
		t.Fatal("no tasks were re-executed for the dead rank's octants")
	}

	var total Stats
	leavesReconstructed := 0
	badRecon := 0
	for r := 0; r < ranks; r++ {
		if r == victim {
			continue
		}
		st := forests[r].Stats()
		total.Leaves += st.Leaves
		total.Interior += st.Interior
		total.SNorm2 += st.SNorm2
		if st.MaxDepth > total.MaxDepth {
			total.MaxDepth = st.MaxDepth
		}
		forests[r].Range(func(_ uint64, nd *Node) bool {
			if nd.Leaf && nd.HasR {
				leavesReconstructed++
				for i := range nd.S.Data {
					if math.Abs(nd.S.Data[i]-nd.R.Data[i]) > 1e-9 {
						badRecon++
						return false
					}
				}
			}
			return true
		})
	}
	want := sharedRes.Stats
	if total.Leaves != want.Leaves || total.Interior != want.Interior || total.MaxDepth != want.MaxDepth {
		t.Fatalf("recovered tree %+v differs from shared %+v", total, want)
	}
	if math.Abs(total.SNorm2-want.SNorm2) > 1e-9*(1+want.SNorm2) {
		t.Fatalf("coefficient norms differ: %v vs %v", total.SNorm2, want.SNorm2)
	}
	if leavesReconstructed != want.Leaves {
		t.Fatalf("reconstructed %d of %d leaves", leavesReconstructed, want.Leaves)
	}
	if badRecon != 0 {
		t.Fatalf("%d leaves reconstructed incorrectly", badRecon)
	}
}
