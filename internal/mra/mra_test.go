package mra

import (
	"math"
	"testing"

	"gottg/internal/core"
	"gottg/internal/linalg"
	"gottg/internal/rt"
)

func TestTwoScaleOrthonormality(t *testing.T) {
	// The two-scale map must satisfy H0·H0ᵀ + H1·H1ᵀ = I.
	for _, k := range []int{3, 6, 10} {
		b := NewBasis(k)
		sum := linalg.NewMatrix(k, k)
		linalg.Gemm(1, b.H0, b.H0T, 0, sum)
		linalg.Gemm(1, b.H1, b.H1T, 1, sum)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(sum.At(i, j)-want) > 1e-10 {
					t.Fatalf("k=%d: (H0H0ᵀ+H1H1ᵀ)[%d,%d] = %v", k, i, j, sum.At(i, j))
				}
			}
		}
	}
}

func TestTwoScaleConsistency(t *testing.T) {
	// Projecting a smooth polynomial at level 1 and filtering must equal
	// the direct level-0 projection (two-scale relation).
	b := NewBasis(6)
	f := func(x, y, z float64) float64 { return 1 + x + x*y + 3*z*z }
	direct := b.ProjectBox(f, 0, 0, 0, 0)
	var cs [8]linalg.Cube
	for c := 0; c < 8; c++ {
		cs[c] = b.ProjectBox(f, 1, uint32(c>>2&1), uint32(c>>1&1), uint32(c&1))
	}
	parent, _, norm := b.FilterResiduals(&cs)
	for i := range direct.Data {
		if math.Abs(direct.Data[i]-parent.Data[i]) > 1e-11 {
			t.Fatalf("filtered parent differs from direct projection at %d: %v vs %v",
				i, parent.Data[i], direct.Data[i])
		}
	}
	// A degree<k polynomial is exactly representable: residual ~ 0.
	if norm > 1e-10 {
		t.Fatalf("polynomial of degree < k has residual %v", norm)
	}
}

func TestFilterUnfilterRoundTrip(t *testing.T) {
	// Unfilter(parent)+d must reproduce the children exactly.
	b := NewBasis(5)
	var cs [8]linalg.Cube
	seed := 1.0
	for c := 0; c < 8; c++ {
		cs[c] = linalg.NewCube(5)
		for i := range cs[c].Data {
			seed = math.Mod(seed*1.618+0.1, 1)
			cs[c].Data[i] = seed
		}
	}
	parent, d, _ := b.FilterResiduals(&cs)
	for c := 0; c < 8; c++ {
		rec := b.Unfilter(parent, c)
		rec.AddScaled(1, d[c])
		for i := range rec.Data {
			if math.Abs(rec.Data[i]-cs[c].Data[i]) > 1e-12 {
				t.Fatalf("child %d element %d: %v vs %v", c, i, rec.Data[i], cs[c].Data[i])
			}
		}
	}
}

func TestProjectBoxEvalPolynomial(t *testing.T) {
	// EvalBox(ProjectBox(f)) == f for polynomials of degree < k.
	b := NewBasis(6)
	f := func(x, y, z float64) float64 { return 2 + x*x - y + 0.5*z*x }
	s := b.ProjectBox(f, 2, 1, 2, 3)
	h := 0.25
	pts := [][3]float64{{0.3, 0.6, 0.8}, {0.26, 0.51, 0.76}, {0.49, 0.74, 0.99}}
	for _, pt := range pts {
		x, y, z := pt[0], pt[1], pt[2]
		// ensure inside the box (1,2,3)@level2 = [0.25,0.5)x[0.5,0.75)x[0.75,1)
		if x < 1*h || x >= 2*h || y < 2*h || y >= 3*h || z < 3*h {
			t.Fatalf("test point %v outside box", pt)
		}
		got := b.EvalBox(s, 2, 1, 2, 3, x, y, z)
		if math.Abs(got-f(x, y, z)) > 1e-10 {
			t.Fatalf("eval(%v) = %v, want %v", pt, got, f(x, y, z))
		}
	}
}

func smallProblem(nf int) *Problem {
	p := DefaultProblem(nf)
	p.K = 5
	p.Tol = 1e-2
	p.MaxLevel = 5
	for i := range p.Funcs {
		p.Funcs[i].Expnt = 50 // mild: laptop-fast trees
	}
	return p
}

func TestSeqProjectionAccuracy(t *testing.T) {
	p := smallProblem(1)
	p.Tol = 1e-4
	p.MaxLevel = 7
	b := NewBasis(p.K)
	fo := &Forest{}
	p.ProjectSeq(b, fo, 0)
	f := p.UnitEval(0)
	// Sample near and away from the Gaussian center.
	c := p.Funcs[0].Center
	ux := (c[0] + p.L) / (2 * p.L)
	uy := (c[1] + p.L) / (2 * p.L)
	uz := (c[2] + p.L) / (2 * p.L)
	var maxErr, maxVal float64
	for _, dx := range []float64{0, 0.01, 0.05, 0.2} {
		x, y, z := ux+dx, uy+dx/2, uz-dx/3
		if x >= 1 || y >= 1 || z < 0 {
			continue
		}
		got := p.Eval(b, fo, 0, x, y, z)
		want := f(x, y, z)
		if e := math.Abs(got - want); e > maxErr {
			maxErr = e
		}
		if v := math.Abs(want); v > maxVal {
			maxVal = v
		}
	}
	if maxVal == 0 {
		t.Fatal("test points all outside support")
	}
	if maxErr/maxVal > 1e-2 {
		t.Fatalf("relative projection error %v too large", maxErr/maxVal)
	}
}

func TestSeqCompressReconstructExact(t *testing.T) {
	p := smallProblem(2)
	b := NewBasis(p.K)
	fo := &Forest{}
	for fi := range p.Funcs {
		p.ProjectSeq(b, fo, fi)
		root := p.CompressSeq(b, fo, fi)
		p.ReconstructSeq(b, fo, fi, root)
	}
	// Every leaf must have R == S to machine precision.
	checked := 0
	fo.nodes.Range(func(k, v any) bool {
		nd := v.(*Node)
		if !nd.Leaf {
			return true
		}
		if !nd.HasR {
			t.Errorf("leaf %x never reconstructed", k)
			return false
		}
		for i := range nd.S.Data {
			if math.Abs(nd.S.Data[i]-nd.R.Data[i]) > 1e-9 {
				t.Errorf("leaf %x coeff %d: %v vs %v", k, i, nd.S.Data[i], nd.R.Data[i])
				return false
			}
		}
		checked++
		return true
	})
	if checked < 8 {
		t.Fatalf("only %d leaves checked", checked)
	}
}

func ttgCfg(workers int) rt.Config {
	c := rt.OptimizedConfig(workers)
	c.PinWorkers = false
	return c
}

func TestTTGMatchesSequential(t *testing.T) {
	p := smallProblem(3)
	// Sequential reference.
	b := NewBasis(p.K)
	seqFo := &Forest{}
	for fi := range p.Funcs {
		p.ProjectSeq(b, seqFo, fi)
		root := p.CompressSeq(b, seqFo, fi)
		p.ReconstructSeq(b, seqFo, fi, root)
	}
	seqStats := seqFo.Stats()

	// TTG run.
	fo, res := Run(p, ttgCfg(4))
	st := res.Stats

	if st.Leaves != seqStats.Leaves || st.Interior != seqStats.Interior || st.MaxDepth != seqStats.MaxDepth {
		t.Fatalf("tree shape differs: ttg %+v vs seq %+v", st, seqStats)
	}
	if math.Abs(st.SNorm2-seqStats.SNorm2) > 1e-9*(1+seqStats.SNorm2) {
		t.Fatalf("coefficient norms differ: %v vs %v", st.SNorm2, seqStats.SNorm2)
	}
	// Reconstruction exactness in the TTG run too.
	bad := 0
	fo.nodes.Range(func(k, v any) bool {
		nd := v.(*Node)
		if nd.Leaf {
			if !nd.HasR {
				bad++
				return false
			}
			for i := range nd.S.Data {
				if math.Abs(nd.S.Data[i]-nd.R.Data[i]) > 1e-9 {
					bad++
					return false
				}
			}
		}
		return true
	})
	if bad != 0 {
		t.Fatal("TTG reconstruction mismatch")
	}
	if res.Tasks == 0 {
		t.Fatal("no tasks recorded")
	}
}

func TestTTGOriginalConfigMatches(t *testing.T) {
	p := smallProblem(1)
	cfg := rt.OriginalConfig(2)
	cfg.PinWorkers = false
	_, resOrig := Run(p, cfg)
	_, resOpt := Run(p, ttgCfg(2))
	if resOrig.Stats.Leaves != resOpt.Stats.Leaves {
		t.Fatalf("original vs optimized disagree: %+v vs %+v", resOrig.Stats, resOpt.Stats)
	}
}

func TestSpecialRefinementCatchesSharpGaussian(t *testing.T) {
	// A Gaussian so sharp that coarse quadrature misses it: without the
	// special-points rule the tree would be trivial and the norm ~ 0.
	p := DefaultProblem(1)
	p.K = 5
	p.Tol = 1e-2
	p.MaxLevel = 9
	p.Funcs[0].Expnt = 30000 // the paper's exponent
	b := NewBasis(p.K)
	fo := &Forest{}
	p.ProjectSeq(b, fo, 0)
	st := fo.Stats()
	if st.MaxDepth < 5 {
		t.Fatalf("sharp Gaussian only refined to depth %d", st.MaxDepth)
	}
	if st.SNorm2 < 1e-6 {
		t.Fatalf("sharp Gaussian norm² = %v — quadrature missed the peak", st.SNorm2)
	}
}

func TestParentKeyAndChild(t *testing.T) {
	key := core.Pack4D(3, 4, 0b1010, 0b0111, 0b1101)
	pk, ci := parentKeyAndChild(key)
	f, n, lx, ly, lz := core.Unpack4D(pk)
	if f != 3 || n != 3 || lx != 0b101 || ly != 0b011 || lz != 0b110 {
		t.Fatalf("parent key wrong: %d %d %b %b %b", f, n, lx, ly, lz)
	}
	if ci != 0b011 { // x even(0), y odd(1), z odd(1)
		t.Fatalf("child index = %b", ci)
	}
}
