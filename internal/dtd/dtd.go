// Package dtd is a Dynamic Task Discovery frontend over the gottg runtime —
// the analogue of PaRSEC DTD (Hoque et al., ScalA'17, the paper's [35]) and
// of StarPU/OmpSs-style insert_task programming: a single thread inserts
// tasks sequentially, declaring how each accesses shared data handles, and
// the runtime infers dependencies from the access sequence (read-after-
// write, write-after-read, write-after-write).
//
// Unlike the OpenMP-tasks baseline (internal/omptask), whose fidelity to
// GCC demands one central queue, DTD dispatches through the full gottg
// scheduler stack — demonstrating that the paper's runtime optimizations
// (LLP, thread-local termination detection) benefit every PaRSEC frontend,
// not just TTG.
package dtd

import (
	"sync"

	"gottg/internal/rt"
)

// Handle names one unit of shared data tracked by the dependence system.
type Handle struct {
	mu         sync.Mutex
	lastWriter *node
	readers    []*node
}

// node is the per-task dependence record.
type node struct {
	task  *rt.Task
	mu    sync.Mutex
	done  bool
	succs []*node
}

// Access declares how a task uses a handle.
type Access struct {
	h     *Handle
	write bool
}

// Read declares a read access.
func Read(h *Handle) Access { return Access{h: h} }

// Write declares a write (or read-write) access.
func Write(h *Handle) Access { return Access{h: h, write: true} }

// Runtime is a DTD execution context.
type Runtime struct {
	rtm      *rt.Runtime
	inserted int64
	waited   bool
}

// New creates a DTD runtime with the given configuration and starts its
// workers.
func New(cfg rt.Config) *Runtime {
	r := &Runtime{rtm: rt.New(cfg)}
	r.rtm.BeginAction() // insertion guard, released by Wait
	r.rtm.Start(false)
	return r
}

// Runtime exposes the underlying gottg runtime.
func (r *Runtime) Runtime() *rt.Runtime { return r.rtm }

// NewData creates a data handle.
func (r *Runtime) NewData() *Handle { return &Handle{} }

// dtdName labels DTD tasks in traces.
type dtdName string

// Name implements rt.Named.
func (n dtdName) Name() string { return string(n) }

// Insert submits a task that accesses the given handles. Insertion must
// happen from one goroutine (the paper's DTD model: sequential task
// insertion, parallel execution). The body runs once all inferred
// dependencies are satisfied.
func (r *Runtime) Insert(name string, body func(), accesses ...Access) {
	if r.waited {
		panic("dtd: Insert after Wait")
	}
	sw := r.rtm.ServiceWorker(0)
	t := sw.NewTask()
	nd := &node{task: t}
	t.TT = dtdName(name)
	t.Exec = func(w *rt.Worker, tk *rt.Task) {
		body()
		nd.release(w)
		w.Completed()
		w.FreeTask(tk)
	}

	// Arm with a sentinel before any predecessor can see this node: preds
	// may complete (and decrement) concurrently with the registration loop
	// below, so the counter must already be live. The sentinel surplus is
	// removed at the end, once the true dependence count is known.
	const sentinel = 1 << 30
	t.ArmDeps(sentinel)

	// Infer dependencies from the access sequence.
	ndeps := int32(0)
	addPred := func(p *node) {
		if p == nil || p == nd {
			return
		}
		p.mu.Lock()
		if !p.done {
			p.succs = append(p.succs, nd)
			ndeps++
		}
		p.mu.Unlock()
	}
	for _, a := range accesses {
		a.h.mu.Lock()
		if a.write {
			addPred(a.h.lastWriter)
			for _, rd := range a.h.readers {
				addPred(rd)
			}
			a.h.lastWriter = nd
			a.h.readers = a.h.readers[:0]
		} else {
			addPred(a.h.lastWriter)
			a.h.readers = append(a.h.readers, nd)
		}
		a.h.mu.Unlock()
	}

	r.inserted++
	sw.Discovered()
	if t.SatisfyDep(sw, sentinel-ndeps) {
		sw.Schedule(t)
	}
}

// release marks the node complete and satisfies its successors.
func (n *node) release(w *rt.Worker) {
	n.mu.Lock()
	n.done = true
	succs := n.succs
	n.succs = nil
	n.mu.Unlock()
	for _, s := range succs {
		if s.task.SatisfyDep(w, 1) {
			w.Schedule(s.task)
		}
	}
}

// Wait blocks until every inserted task has completed and shuts the
// runtime down. The Runtime is finished afterwards.
func (r *Runtime) Wait() {
	if r.waited {
		panic("dtd: Wait called twice")
	}
	r.waited = true
	r.rtm.EndAction()
	r.rtm.WaitDone()
}

// Inserted reports how many tasks were submitted.
func (r *Runtime) Inserted() int64 { return r.inserted }
