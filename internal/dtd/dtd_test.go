package dtd

import (
	"sync/atomic"
	"testing"

	"gottg/internal/rt"
)

func cfg(workers int) rt.Config {
	c := rt.OptimizedConfig(workers)
	c.PinWorkers = false
	return c
}

func TestIndependentTasks(t *testing.T) {
	r := New(cfg(4))
	var n atomic.Int64
	for i := 0; i < 2000; i++ {
		r.Insert("indep", func() { n.Add(1) })
	}
	r.Wait()
	if n.Load() != 2000 {
		t.Fatalf("ran %d", n.Load())
	}
	if r.Inserted() != 2000 {
		t.Fatalf("Inserted = %d", r.Inserted())
	}
}

func TestWriteAfterWriteChain(t *testing.T) {
	r := New(cfg(4))
	h := r.NewData()
	var seq []int
	const n = 1000
	for i := 0; i < n; i++ {
		i := i
		r.Insert("w", func() { seq = append(seq, i) }, Write(h))
	}
	r.Wait()
	if len(seq) != n {
		t.Fatalf("len=%d", len(seq))
	}
	for i, v := range seq {
		if v != i {
			t.Fatalf("WAW order broken at %d: %d", i, v)
		}
	}
}

func TestReadersParallelWriterWaits(t *testing.T) {
	r := New(cfg(4))
	h := r.NewData()
	var readers atomic.Int32
	var writerOK atomic.Bool
	r.Insert("init", func() {}, Write(h))
	const R = 10
	for i := 0; i < R; i++ {
		r.Insert("r", func() { readers.Add(1) }, Read(h))
	}
	r.Insert("w", func() { writerOK.Store(readers.Load() == R) }, Write(h))
	r.Wait()
	if !writerOK.Load() {
		t.Fatal("write-after-read dependence violated")
	}
}

func TestChainThroughTwoHandles(t *testing.T) {
	// task i reads h[i-1], writes h[i]: a strict pipeline.
	r := New(cfg(4))
	const n = 500
	hs := make([]*Handle, n+1)
	for i := range hs {
		hs[i] = r.NewData()
	}
	vals := make([]int, n+1)
	vals[0] = 1
	for i := 1; i <= n; i++ {
		i := i
		r.Insert("link", func() { vals[i] = vals[i-1] + 1 },
			Read(hs[i-1]), Write(hs[i]))
	}
	r.Wait()
	if vals[n] != n+1 {
		t.Fatalf("pipeline result %d, want %d", vals[n], n+1)
	}
}

func TestStencilDoubleBuffer(t *testing.T) {
	// The Task-Bench stencil with double-buffered handles: task (t,p)
	// reads row (t-1) neighborhood, writes cell (t%2, p). Verifies against
	// a sequential sweep — this exercises RAW, WAR and WAW together.
	const W, T = 8, 40
	r := New(cfg(4))
	hs := [2][]*Handle{}
	for b := 0; b < 2; b++ {
		hs[b] = make([]*Handle, W)
		for p := range hs[b] {
			hs[b][p] = r.NewData()
		}
	}
	grid := [2][]int64{make([]int64, W), make([]int64, W)}
	for p := 0; p < W; p++ {
		grid[0][p] = int64(p)
	}
	// Seed writers so generation-0 cells have a writer record.
	for p := 0; p < W; p++ {
		r.Insert("seed", func() {}, Write(hs[0][p]))
	}
	for ts := 1; ts <= T; ts++ {
		src, dst := (ts-1)%2, ts%2
		for p := 0; p < W; p++ {
			p := p
			acc := []Access{Write(hs[dst][p]), Read(hs[src][p])}
			if p > 0 {
				acc = append(acc, Read(hs[src][p-1]))
			}
			if p < W-1 {
				acc = append(acc, Read(hs[src][p+1]))
			}
			r.Insert("stencil", func() {
				s := grid[src][p]
				if p > 0 {
					s += grid[src][p-1]
				}
				if p < W-1 {
					s += grid[src][p+1]
				}
				grid[dst][p] = s
			}, acc...)
		}
	}
	r.Wait()
	// Sequential reference.
	a := make([]int64, W)
	for p := range a {
		a[p] = int64(p)
	}
	for ts := 1; ts <= T; ts++ {
		b := make([]int64, W)
		for p := 0; p < W; p++ {
			s := a[p]
			if p > 0 {
				s += a[p-1]
			}
			if p < W-1 {
				s += a[p+1]
			}
			b[p] = s
		}
		a = b
	}
	for p := 0; p < W; p++ {
		if grid[T%2][p] != a[p] {
			t.Fatalf("cell %d = %d, want %d", p, grid[T%2][p], a[p])
		}
	}
}

func TestDTDRunsOnAllSchedulers(t *testing.T) {
	for _, k := range []rt.SchedKind{rt.SchedLLP, rt.SchedLFQ, rt.SchedLL} {
		c := cfg(2)
		c.Sched = k
		r := New(c)
		h := r.NewData()
		sum := 0
		for i := 0; i < 200; i++ {
			i := i
			r.Insert("acc", func() { sum += i }, Write(h))
		}
		r.Wait()
		if sum != 199*200/2 {
			t.Fatalf("%v: sum %d", k, sum)
		}
	}
}

func TestLifecyclePanics(t *testing.T) {
	r := New(cfg(1))
	r.Wait()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Insert after Wait", func() { r.Insert("x", func() {}) })
	mustPanic("double Wait", func() { r.Wait() })
}
