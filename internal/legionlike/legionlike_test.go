package legionlike

import (
	"sync/atomic"
	"testing"
)

func TestIndependentTasks(t *testing.T) {
	r := New(4)
	var n atomic.Int64
	for i := 0; i < 1000; i++ {
		r.Launch(nil, []uint64{uint64(i)}, func() { n.Add(1) })
	}
	r.Close()
	if n.Load() != 1000 {
		t.Fatalf("ran %d", n.Load())
	}
}

func TestWriterChainOrdered(t *testing.T) {
	r := New(4)
	const n = 400
	var seq []int
	for i := 0; i < n; i++ {
		i := i
		r.Launch(nil, []uint64{1}, func() { seq = append(seq, i) })
	}
	r.Fence()
	r.Close()
	for i, v := range seq {
		if v != i {
			t.Fatalf("write-write order violated at %d: %d", i, v)
		}
	}
}

func TestReadersBeforeNextWriter(t *testing.T) {
	r := New(4)
	var readers atomic.Int32
	var ok atomic.Bool
	r.Launch(nil, []uint64{9}, func() {})
	const R = 6
	for i := 0; i < R; i++ {
		r.Launch([]uint64{9}, nil, func() { readers.Add(1) })
	}
	r.Launch(nil, []uint64{9}, func() { ok.Store(readers.Load() == R) })
	r.Fence()
	r.Close()
	if !ok.Load() {
		t.Fatal("writer overtook readers")
	}
}

func TestStencilPattern(t *testing.T) {
	// The Task-Bench shape this baseline exists for: W points, T steps,
	// task (t,p) writes region (t+1,p) and reads (t,p-1..p+1).
	const W, T = 8, 30
	r := New(4)
	reg := func(t, p int) uint64 { return uint64(t)<<16 | uint64(p) }
	grid := make([][]int64, T+1)
	for i := range grid {
		grid[i] = make([]int64, W)
	}
	for p := 0; p < W; p++ {
		grid[0][p] = int64(p)
	}
	for ts := 0; ts < T; ts++ {
		for p := 0; p < W; p++ {
			ts, p := ts, p
			var reads []uint64
			for d := -1; d <= 1; d++ {
				if p+d >= 0 && p+d < W {
					reads = append(reads, reg(ts, p+d))
				}
			}
			r.Launch(reads, []uint64{reg(ts+1, p)}, func() {
				s := grid[ts][p]
				if p > 0 {
					s += grid[ts][p-1]
				}
				if p < W-1 {
					s += grid[ts][p+1]
				}
				grid[ts+1][p] = s
			})
		}
	}
	r.Fence()
	r.Close()
	// Sequential check.
	a := make([]int64, W)
	for i := range a {
		a[i] = int64(i)
	}
	for ts := 0; ts < T; ts++ {
		b := make([]int64, W)
		for p := 0; p < W; p++ {
			s := a[p]
			if p > 0 {
				s += a[p-1]
			}
			if p < W-1 {
				s += a[p+1]
			}
			b[p] = s
		}
		a = b
	}
	for p := 0; p < W; p++ {
		if grid[T][p] != a[p] {
			t.Fatalf("cell %d = %d, want %d", p, grid[T][p], a[p])
		}
	}
}

func TestFenceWithNothingLaunched(t *testing.T) {
	r := New(2)
	r.Fence()
	r.Close()
}
