// Package legionlike is the Legion baseline: deferred task execution with
// dynamic dependence analysis over logical regions. Task launches stream
// through a single analysis stage (Legion's mapping/dependence-analysis
// pipeline), which computes predecessor events from region usage and only
// then hands the task to an execution resource. That serialized analysis
// gives Legion its characteristically high per-task overhead at small task
// granularities (paper Figs. 7–8, 10–11).
//
// Scheduling model: the analyzer assigns tasks round-robin to worker queues;
// a worker blocks on a task's predecessor events before running it. This is
// deadlock-free whenever, per worker queue, tasks are enqueued in an order
// consistent with the dependence partial order — true for all launch orders
// produced by a single analysis thread processing launches FIFO, because a
// task's predecessors are always launched (hence analyzed and queued)
// earlier, and every worker drains its queue in FIFO order while predecessor
// completion never depends on a successor.
package legionlike

import (
	"sync"
)

// task is a launched task: region requirements, completion event, and the
// predecessors filled in by dependence analysis.
type task struct {
	fn     func()
	reads  []uint64
	writes []uint64
	preds  []*task
	done   chan struct{}
}

// Runtime is a Legion-like deferred-execution runtime.
type Runtime struct {
	launch chan *task
	queues []chan *task

	regions map[uint64]*regionState

	analysisDone sync.WaitGroup
	workersDone  sync.WaitGroup
	outstanding  sync.WaitGroup

	rr int // round-robin cursor (analysis goroutine private)
}

// regionState tracks the most recent users of a logical region.
type regionState struct {
	lastWriter *task
	readers    []*task
}

// New starts a runtime with `threads` execution workers.
func New(threads int) *Runtime {
	if threads < 1 {
		threads = 1
	}
	r := &Runtime{
		launch:  make(chan *task, 1024),
		queues:  make([]chan *task, threads),
		regions: map[uint64]*regionState{},
	}
	for i := range r.queues {
		r.queues[i] = make(chan *task, 4096)
	}
	r.analysisDone.Add(1)
	go r.analyze()
	for i := range r.queues {
		r.workersDone.Add(1)
		go r.worker(r.queues[i])
	}
	return r
}

// Launch submits a task using regions `reads` and `writes`. Returns
// immediately (deferred execution).
func (r *Runtime) Launch(reads, writes []uint64, fn func()) {
	t := &task{fn: fn, reads: reads, writes: writes, done: make(chan struct{})}
	r.outstanding.Add(1)
	r.launch <- t
}

func (r *Runtime) analyze() {
	defer r.analysisDone.Done()
	for t := range r.launch {
		// Dependence analysis (serialized — the Legion pipeline stage):
		for _, reg := range t.writes {
			st := r.region(reg)
			if st.lastWriter != nil {
				t.preds = append(t.preds, st.lastWriter)
			}
			t.preds = append(t.preds, st.readers...)
			st.lastWriter = t
			st.readers = nil
		}
		for _, reg := range t.reads {
			st := r.region(reg)
			if st.lastWriter != nil {
				t.preds = append(t.preds, st.lastWriter)
			}
			st.readers = append(st.readers, t)
		}
		r.queues[r.rr] <- t
		r.rr = (r.rr + 1) % len(r.queues)
	}
	for _, q := range r.queues {
		close(q)
	}
}

func (r *Runtime) region(id uint64) *regionState {
	st := r.regions[id]
	if st == nil {
		st = &regionState{}
		r.regions[id] = st
	}
	return st
}

func (r *Runtime) worker(q chan *task) {
	defer r.workersDone.Done()
	for t := range q {
		for _, p := range t.preds {
			<-p.done
		}
		t.fn()
		close(t.done)
		r.outstanding.Done()
	}
}

// Fence blocks until every launched task has completed.
func (r *Runtime) Fence() {
	r.outstanding.Wait()
}

// Close drains and stops the runtime.
func (r *Runtime) Close() {
	r.Fence()
	close(r.launch)
	r.analysisDone.Wait()
	r.workersDone.Wait()
}
