package mpilike

import (
	"sync/atomic"
	"testing"
)

func TestPingPong(t *testing.T) {
	w := NewWorld(2, 4)
	var last float64
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, []float64{1})
			for i := 0; i < 100; i++ {
				v := r.Recv(1)
				r.Send(1, []float64{v[0] + 1})
			}
		} else {
			for i := 0; i < 100; i++ {
				v := r.Recv(0)
				r.Send(0, []float64{v[0] + 1})
			}
			last = r.Recv(0)[0]
		}
	})
	if last != 201 {
		t.Fatalf("final value %v, want 201", last)
	}
}

func TestBarrier(t *testing.T) {
	const n = 5
	w := NewWorld(n, 1)
	var phase atomic.Int32
	var errs atomic.Int32
	w.Run(func(r *Rank) {
		for p := int32(1); p <= 50; p++ {
			phase.Add(1)
			r.Barrier()
			// After the barrier every rank must observe all n arrivals of
			// this phase.
			if phase.Load() < p*n {
				errs.Add(1)
			}
			r.Barrier()
		}
	})
	if errs.Load() != 0 {
		t.Fatalf("%d barrier violations", errs.Load())
	}
}

func TestHaloExchangeStencil(t *testing.T) {
	// Each rank owns one cell; 20 steps of a 1D sum stencil with halo
	// exchange must match the sequential result.
	const n = 8
	const steps = 20
	w := NewWorld(n, 2)
	results := make([]float64, n)
	w.Run(func(r *Rank) {
		id := r.ID()
		v := float64(id)
		for s := 0; s < steps; s++ {
			var left, right float64
			if id > 0 {
				r.Send(id-1, []float64{v})
			}
			if id < n-1 {
				r.Send(id+1, []float64{v})
			}
			if id > 0 {
				left = r.Recv(id - 1)[0]
			}
			if id < n-1 {
				right = r.Recv(id + 1)[0]
			}
			v = left + v + right
		}
		results[id] = v
	})
	// Sequential reference.
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
	}
	for s := 0; s < steps; s++ {
		for i := 0; i < n; i++ {
			v := a[i]
			if i > 0 {
				v += a[i-1]
			}
			if i < n-1 {
				v += a[i+1]
			}
			b[i] = v
		}
		a, b = b, a
	}
	for i := range results {
		if results[i] != a[i] {
			t.Fatalf("rank %d: %v, want %v", i, results[i], a[i])
		}
	}
}

func TestWorldSize(t *testing.T) {
	w := NewWorld(3, 1)
	if w.Size() != 3 {
		t.Fatalf("Size = %d", w.Size())
	}
	w.Run(func(r *Rank) {
		if r.Size() != 3 {
			t.Errorf("rank Size = %d", r.Size())
		}
	})
}
