// Package mpilike is the MPI baseline: one goroutine per rank, rank-private
// data, and explicit point-to-point messages over buffered channels. There
// is no task abstraction at all — which is why this contender shows the
// lowest per-"task" overhead in the paper's single-core Task-Bench results
// (Fig. 7): the work loop is just computation plus neighbor exchange.
package mpilike

import "sync"

// World is a fixed-size set of ranks with all-pairs message channels.
type World struct {
	size  int
	chans [][]chan []float64

	barMu    sync.Mutex
	barCount int
	barGen   int
	barCond  *sync.Cond
}

// NewWorld creates a world of n ranks; channel capacity `buf` per pair.
func NewWorld(n, buf int) *World {
	w := &World{size: n, chans: make([][]chan []float64, n)}
	for i := range w.chans {
		w.chans[i] = make([]chan []float64, n)
		for j := range w.chans[i] {
			w.chans[i][j] = make(chan []float64, buf)
		}
	}
	w.barCond = sync.NewCond(&w.barMu)
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Rank is one rank's endpoint, used inside its goroutine only.
type Rank struct {
	world *World
	rank  int
}

// Run spawns one goroutine per rank executing body and waits for all.
func (w *World) Run(body func(r *Rank)) {
	var wg sync.WaitGroup
	for i := 0; i < w.size; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body(&Rank{world: w, rank: i})
		}(i)
	}
	wg.Wait()
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.rank }

// Size returns the world size.
func (r *Rank) Size() int { return r.world.size }

// Send delivers data to rank dst (blocking only if the pair buffer is full).
func (r *Rank) Send(dst int, data []float64) {
	r.world.chans[r.rank][dst] <- data
}

// Recv receives the next message from rank src (blocking).
func (r *Rank) Recv(src int) []float64 {
	return <-r.world.chans[src][r.rank]
}

// Barrier synchronizes all ranks (centralized sense-reversing barrier).
func (r *Rank) Barrier() {
	w := r.world
	w.barMu.Lock()
	gen := w.barGen
	w.barCount++
	if w.barCount == w.size {
		w.barCount = 0
		w.barGen++
		w.barCond.Broadcast()
	} else {
		for gen == w.barGen {
			w.barCond.Wait()
		}
	}
	w.barMu.Unlock()
}
