package workshare

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestParallelForCoversRange(t *testing.T) {
	for _, threads := range []int{1, 2, 4} {
		p := NewPool(threads)
		const n = 10000
		hits := make([]int32, n)
		p.ParallelFor(n, func(i, thread int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("threads=%d: index %d executed %d times", threads, i, h)
			}
		}
		p.Close()
	}
}

func TestRepeatedLoops(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sum atomic.Int64
	for round := 0; round < 200; round++ {
		p.ParallelFor(64, func(i, thread int) {
			sum.Add(1)
		})
	}
	if sum.Load() != 200*64 {
		t.Fatalf("sum = %d, want %d", sum.Load(), 200*64)
	}
}

func TestBarrierSemantics(t *testing.T) {
	// Writes from loop k must be visible to loop k+1 (implicit barrier).
	p := NewPool(4)
	defer p.Close()
	data := make([]int, 256)
	p.ParallelFor(len(data), func(i, _ int) { data[i] = i })
	var bad atomic.Int32
	p.ParallelFor(len(data), func(i, _ int) {
		if data[i] != i {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("%d stale reads across barrier", bad.Load())
	}
}

func TestZeroAndTinyIterations(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	p.ParallelFor(0, func(i, _ int) { t.Error("body ran for n=0") })
	var n atomic.Int32
	p.ParallelFor(1, func(i, _ int) { n.Add(1) })
	if n.Load() != 1 {
		t.Fatalf("n=1 loop ran %d times", n.Load())
	}
	if p.Threads() != 4 {
		t.Fatalf("Threads = %d", p.Threads())
	}
}

func TestQuickSumMatchesSequential(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	f := func(vals []int32) bool {
		var got atomic.Int64
		p.ParallelFor(len(vals), func(i, _ int) {
			got.Add(int64(vals[i]))
		})
		var want int64
		for _, v := range vals {
			want += int64(v)
		}
		return got.Load() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
