// Package workshare is the OpenMP-worksharing baseline: a persistent thread
// pool executing statically chunked parallel-for loops separated by barriers
// (fork-join). It models the "OpenMP Parallel For" contender of the paper's
// Task-Bench evaluation (Figs. 7–11): per-iteration cost is near zero, but
// every timestep pays a full barrier, which is what limits it at small task
// granularities and high thread counts.
package workshare

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a persistent worksharing team. The creating goroutine acts as
// thread 0 and participates in every loop.
type Pool struct {
	threads int

	epoch   atomic.Uint64 // incremented to publish a new loop
	arrived atomic.Int64  // workers done with the current loop

	fn    func(i, thread int)
	total int

	quit atomic.Bool
	wg   sync.WaitGroup
}

// NewPool starts a team of `threads` (>=1). threads-1 helper goroutines are
// spawned; the caller is thread 0.
func NewPool(threads int) *Pool {
	if threads < 1 {
		threads = 1
	}
	p := &Pool{threads: threads}
	for t := 1; t < threads; t++ {
		p.wg.Add(1)
		go p.worker(t)
	}
	return p
}

// Threads returns the team size.
func (p *Pool) Threads() int { return p.threads }

// ParallelFor executes fn(i, thread) for i in [0,n) with static chunking
// across the team, returning after the implicit barrier. Must be called from
// the goroutine that created the pool.
func (p *Pool) ParallelFor(n int, fn func(i, thread int)) {
	if p.threads == 1 {
		for i := 0; i < n; i++ {
			fn(i, 0)
		}
		return
	}
	p.fn = fn
	p.total = n
	p.arrived.Store(0)
	p.epoch.Add(1) // publish (all prior writes ordered before)
	p.chunk(0)
	// Barrier: wait for all helpers.
	for p.arrived.Load() != int64(p.threads-1) {
		runtime.Gosched()
	}
}

// chunk runs thread t's static share of the published loop.
func (p *Pool) chunk(t int) {
	n, threads := p.total, p.threads
	lo := t * n / threads
	hi := (t + 1) * n / threads
	fn := p.fn
	for i := lo; i < hi; i++ {
		fn(i, t)
	}
}

func (p *Pool) worker(t int) {
	defer p.wg.Done()
	last := uint64(0)
	spins := 0
	for {
		e := p.epoch.Load()
		if e == last {
			if p.quit.Load() {
				return
			}
			spins++
			if spins%64 == 0 {
				runtime.Gosched()
			}
			continue
		}
		spins = 0
		last = e
		p.chunk(t)
		p.arrived.Add(1)
	}
}

// Close shuts the team down. The pool is unusable afterwards.
func (p *Pool) Close() {
	p.quit.Store(true)
	p.wg.Wait()
}
