// Quickstart: a three-stage data-flow pipeline on the public ttg API.
//
// generate ──> square ──> sum
//
// The generate task fans out N keyed values; each square task transforms
// one value (move semantics — the datum is forwarded, not copied); the sum
// task uses an aggregator terminal to gather all N results in one task.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"gottg/ttg"
)

func main() {
	const n = 100

	g := ttg.New(ttg.OptimizedConfig(0)) // 0 = one worker per CPU

	values := ttg.NewEdge("values")
	squares := ttg.NewEdge("squares")

	generate := g.NewTT("generate", 1, 1, func(tc ttg.TaskContext) {
		for i := uint64(0); i < n; i++ {
			tc.Send(0, i, int(i))
		}
	})

	square := g.NewTT("square", 1, 1, func(tc ttg.TaskContext) {
		v := tc.Value(0).(int)
		tc.Send(0, 0, v*v) // all results target the single sum task (key 0)
	})

	total := 0
	sum := g.NewTT("sum", 1, 0, func(tc ttg.TaskContext) {
		agg := tc.Aggregate(0)
		for i := 0; i < agg.Len(); i++ {
			total += agg.Value(i).(int)
		}
	}).WithAggregator(0, func(uint64) int { return n })

	generate.Out(0, values)
	square.Out(0, squares)
	values.To(square, 0)
	squares.To(sum, 0)

	g.MakeExecutable()
	g.InvokeControl(generate, 0)
	g.Wait()

	want := (n - 1) * n * (2*n - 1) / 6 // Σ i² for i < n
	fmt.Printf("sum of squares 0..%d = %d (want %d)\n", n-1, total, want)
	if total != want {
		panic("wrong result")
	}
}
