// Wavefront: blocked Needleman-Wunsch sequence alignment as a TTG graph.
// Block (i,j) of the dynamic-programming matrix depends on its left, top,
// and top-left neighbors, producing the classic wavefront of parallelism
// sweeping the anti-diagonals. Task priorities follow the anti-diagonal so
// the LLP scheduler keeps the frontier moving (paper §IV-C's motivation:
// "steer the execution along a critical path").
//
// Each block task aggregates a position-dependent number of inputs
// (corner: 0 — seeded; edges: 1 or 2; interior: 3) through an aggregator
// terminal (paper §V-D1).
//
// Run: go run ./examples/wavefront [-n 2048] [-b 128]
package main

import (
	"flag"
	"fmt"

	"gottg/ttg"
)

const (
	match    = 2
	mismatch = -1
	gap      = -2
)

// msg carries boundary data into a successor block: the producer's border
// row/column plus the corner value, tagged with the direction it came from.
type msg struct {
	Dir    int // 0=left (column), 1=top (row), 2=diagonal (corner)
	Border []int32
	Corner int32
}

func main() {
	nFlag := flag.Int("n", 2048, "sequence length")
	bFlag := flag.Int("b", 128, "block size")
	tFlag := flag.Int("threads", 0, "worker threads (0 = one per CPU)")
	flag.Parse()
	n, b := *nFlag, *bFlag
	if n%b != 0 {
		panic("n must be a multiple of b")
	}
	nb := n / b

	// Deterministic pseudo-random DNA-ish sequences.
	seqA := make([]byte, n)
	seqB := make([]byte, n)
	rng := uint64(123)
	next := func() byte {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return "ACGT"[rng%4]
	}
	for i := range seqA {
		seqA[i] = next()
	}
	for i := range seqB {
		seqB[i] = next()
	}

	// scoreBlock fills one b×b block given its boundary conditions.
	// left[k] = H[i0+k][j0-1], top[k] = H[i0-1][j0+k], diag = H[i0-1][j0-1].
	scoreBlock := func(bi, bj int, left, top []int32, diag int32) (blk [][]int32) {
		blk = make([][]int32, b)
		i0, j0 := bi*b, bj*b
		cell := func(i, j int) int32 {
			switch {
			case i >= 0 && j >= 0:
				return blk[i][j]
			case i < 0 && j < 0:
				return diag
			case i < 0:
				return top[j]
			default:
				return left[i]
			}
		}
		for i := 0; i < b; i++ {
			blk[i] = make([]int32, b)
			for j := 0; j < b; j++ {
				s := int32(mismatch)
				if seqA[i0+i] == seqB[j0+j] {
					s = match
				}
				d := cell(i-1, j-1) + s
				l := cell(i, j-1) + gap
				t := cell(i-1, j) + gap
				best := d
				if l > best {
					best = l
				}
				if t > best {
					best = t
				}
				blk[i][j] = best
			}
		}
		return blk
	}

	// Global boundary: H[i][-1] = (i+1)*gap, H[-1][j] = (j+1)*gap.
	borderLeft := func(bi int) []int32 {
		out := make([]int32, b)
		for k := range out {
			out[k] = int32((bi*b + k + 1) * gap)
		}
		return out
	}
	borderTop := borderLeft // symmetric

	var final int32
	g := ttg.New(ttg.OptimizedConfig(*tFlag))
	e := ttg.NewEdge("borders")

	needs := func(key uint64) int {
		bi, bj := ttg.Unpack2(key)
		n := 0
		if bi > 0 {
			n++
		}
		if bj > 0 {
			n++
		}
		if bi > 0 && bj > 0 {
			n++
		}
		if n == 0 {
			n = 1 // block (0,0) is seeded with one control datum
		}
		return n
	}

	block := g.NewTT("block", 1, 1, func(tc ttg.TaskContext) {
		bi32, bj32 := ttg.Unpack2(tc.Key())
		bi, bj := int(bi32), int(bj32)
		var left, top []int32
		var diag int32
		agg := tc.Aggregate(0)
		for i := 0; i < agg.Len(); i++ {
			if m, ok := agg.Value(i).(*msg); ok {
				switch m.Dir {
				case 0:
					left = m.Border
				case 1:
					top = m.Border
				case 2:
					diag = m.Corner
				}
			}
		}
		// Fall back to the global DP boundary where no producer exists.
		if bj == 0 {
			left = borderLeft(bi)
		}
		if bi == 0 {
			top = borderTop(bj)
		}
		switch {
		case bi == 0 && bj == 0:
			diag = 0
		case bi == 0:
			diag = int32(bj*b) * gap // H[-1][j0-1] on the global boundary
		case bj == 0:
			diag = int32(bi*b) * gap // H[i0-1][-1] on the global boundary
		}
		blk := scoreBlock(bi, bj, left, top, diag)
		// Emit borders to the right, down, and diagonal successors.
		rightCol := make([]int32, b)
		for k := 0; k < b; k++ {
			rightCol[k] = blk[k][b-1]
		}
		bottomRow := make([]int32, b)
		copy(bottomRow, blk[b-1])
		corner := blk[b-1][b-1]
		if bj+1 < nb {
			tc.Send(0, ttg.Pack2(uint32(bi), uint32(bj+1)), &msg{Dir: 0, Border: rightCol})
		}
		if bi+1 < nb {
			tc.Send(0, ttg.Pack2(uint32(bi+1), uint32(bj)), &msg{Dir: 1, Border: bottomRow})
		}
		if bi+1 < nb && bj+1 < nb {
			tc.Send(0, ttg.Pack2(uint32(bi+1), uint32(bj+1)), &msg{Dir: 2, Corner: corner})
		}
		if bi == nb-1 && bj == nb-1 {
			final = corner
		}
	}).WithAggregator(0, needs).
		WithPriority(func(key uint64) int32 {
			bi, bj := ttg.Unpack2(key)
			return -int32(bi + bj) // earlier anti-diagonals first
		})

	block.Out(0, e)
	e.To(block, 0)
	g.MakeExecutable()
	g.Invoke(block, ttg.Pack2(0, 0), nil) // dummy datum satisfies the corner block's aggregator
	g.Wait()

	// Sequential verification.
	prev := make([]int32, n+1)
	cur := make([]int32, n+1)
	for j := 0; j <= n; j++ {
		prev[j] = int32(j) * gap
	}
	for i := 1; i <= n; i++ {
		cur[0] = int32(i) * gap
		for j := 1; j <= n; j++ {
			s := int32(mismatch)
			if seqA[i-1] == seqB[j-1] {
				s = match
			}
			best := prev[j-1] + s
			if v := cur[j-1] + gap; v > best {
				best = v
			}
			if v := prev[j] + gap; v > best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	want := prev[n]

	fmt.Printf("wavefront: n=%d blocks=%dx%d alignment score = %d (sequential: %d)\n",
		n, nb, nb, final, want)
	if final != want {
		panic("wavefront result differs from sequential DP")
	}
	fmt.Println("verified ✓")
}
