// Heat: iterative 2D Jacobi heat diffusion on a blocked grid as a TTG
// graph. This is the canonical *cyclic template graph* example: a single
// Exchange/Compute template task pair unfolds into width×height×steps task
// instances, with halo rows/columns flowing between neighboring blocks each
// timestep — the same structural pattern as Task-Bench's stencil (paper
// Fig. 2), but two-dimensional and carrying real payloads.
//
// Each block task uses an aggregator terminal whose input count depends on
// the block's position (2–4 halos inside, fewer at the boundary), and
// priorities favor earlier timesteps so the frontier advances evenly.
//
// Run: go run ./examples/heat [-n 256] [-b 64] [-steps 50]
package main

import (
	"flag"
	"fmt"
	"math"

	"gottg/ttg"
)

// halo carries one block boundary to a neighbor.
type halo struct {
	Dir  int // 0=from left, 1=from right, 2=from top, 3=from bottom
	Vals []float64
}

func main() {
	nFlag := flag.Int("n", 256, "grid dimension")
	bFlag := flag.Int("b", 64, "block size")
	sFlag := flag.Int("steps", 50, "timesteps")
	tFlag := flag.Int("threads", 0, "worker threads (0 = one per CPU)")
	flag.Parse()
	n, b, steps := *nFlag, *bFlag, *sFlag
	if n%b != 0 {
		panic("n must be a multiple of b")
	}
	nb := n / b
	if nb >= 1<<10 || steps >= 1<<12 {
		panic("grid too large for the key packing in this example")
	}

	// Initial condition: a hot square in the middle of a cold plate.
	init := func(i, j int) float64 {
		if i > n/3 && i < 2*n/3 && j > n/3 && j < 2*n/3 {
			return 100
		}
		return 0
	}

	// Per-block state, indexed [bi][bj]; each block is written only by its
	// own task at each step (ownership moves along the self-edge).
	type block = []float64 // (b+2)×(b+2) with ghost ring
	stride := b + 2
	newBlock := func(bi, bj int) block {
		blk := make(block, stride*stride)
		// Interior plus ghost ring, all from the global initial condition
		// (out-of-domain cells read as 0): step 0 needs no halo exchange.
		initAt := func(i, j int) float64 {
			if i < 0 || i >= n || j < 0 || j >= n {
				return 0
			}
			return init(i, j)
		}
		for i := -1; i <= b; i++ {
			for j := -1; j <= b; j++ {
				blk[(i+1)*stride+(j+1)] = initAt(bi*b+i, bj*b+j)
			}
		}
		return blk
	}

	// key packs (step, bi, bj): step 12 bits, bi/bj 10 bits each.
	key := func(step, bi, bj int) uint64 {
		return uint64(step)<<20 | uint64(bi)<<10 | uint64(bj)
	}
	unkey := func(k uint64) (step, bi, bj int) {
		return int(k >> 20), int(k >> 10 & 0x3ff), int(k & 0x3ff)
	}

	needs := func(k uint64) int {
		step, bi, bj := unkey(k)
		if step == 0 {
			return 1 // seeded with the initial block only; no halos yet
		}
		c := 1 // the block's own state from the previous step
		if bi > 0 {
			c++
		}
		if bi < nb-1 {
			c++
		}
		if bj > 0 {
			c++
		}
		if bj < nb-1 {
			c++
		}
		return c
	}

	g := ttg.New(ttg.OptimizedConfig(*tFlag))
	e := ttg.NewEdge("halo+state")

	final := make([][]block, nb)
	for i := range final {
		final[i] = make([]block, nb)
	}

	var compute *ttg.TT
	compute = g.NewTT("heat", 1, 1, func(tc ttg.TaskContext) {
		step, bi, bj := unkey(tc.Key())
		agg := tc.Aggregate(0)
		var blk block
		for i := 0; i < agg.Len(); i++ {
			switch v := agg.Value(i).(type) {
			case block:
				blk = v
			case *halo:
				_ = v // applied below once blk is known
			}
		}
		// Fill the ghost ring from the received halos (second pass so blk
		// is available regardless of arrival order).
		for i := 0; i < agg.Len(); i++ {
			h, ok := agg.Value(i).(*halo)
			if !ok {
				continue
			}
			switch h.Dir {
			case 0: // from left neighbor: our left ghost column
				for r := 0; r < b; r++ {
					blk[(r+1)*stride] = h.Vals[r]
				}
			case 1:
				for r := 0; r < b; r++ {
					blk[(r+1)*stride+b+1] = h.Vals[r]
				}
			case 2:
				copy(blk[1:1+b], h.Vals)
			case 3:
				copy(blk[(b+1)*stride+1:(b+1)*stride+1+b], h.Vals)
			}
		}
		// Jacobi update into a fresh block (the old one is shared with the
		// halos we are about to send, so we cannot update in place).
		out := make(block, stride*stride)
		for i := 1; i <= b; i++ {
			for j := 1; j <= b; j++ {
				out[i*stride+j] = 0.25 * (blk[(i-1)*stride+j] + blk[(i+1)*stride+j] +
					blk[i*stride+j-1] + blk[i*stride+j+1])
			}
		}
		if step == steps-1 {
			final[bi][bj] = out
			return
		}
		// Send halos to neighbors and the state to ourselves at step+1.
		next := step + 1
		if bj > 0 {
			col := make([]float64, b)
			for r := 0; r < b; r++ {
				col[r] = out[(r+1)*stride+1]
			}
			tc.Send(0, key(next, bi, bj-1), &halo{Dir: 1, Vals: col})
		}
		if bj < nb-1 {
			col := make([]float64, b)
			for r := 0; r < b; r++ {
				col[r] = out[(r+1)*stride+b]
			}
			tc.Send(0, key(next, bi, bj+1), &halo{Dir: 0, Vals: col})
		}
		if bi > 0 {
			row := make([]float64, b)
			copy(row, out[1*stride+1:1*stride+1+b])
			tc.Send(0, key(next, bi-1, bj), &halo{Dir: 3, Vals: row})
		}
		if bi < nb-1 {
			row := make([]float64, b)
			copy(row, out[b*stride+1:b*stride+1+b])
			tc.Send(0, key(next, bi+1, bj), &halo{Dir: 2, Vals: row})
		}
		tc.Send(0, key(next, bi, bj), out)
	}).WithAggregator(0, needs).
		WithPriority(func(k uint64) int32 {
			step, _, _ := unkey(k)
			return -int32(step) // earlier timesteps first
		})

	compute.Out(0, e)
	e.To(compute, 0)
	g.MakeExecutable()
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			g.Invoke(compute, key(0, bi, bj), newBlock(bi, bj))
		}
	}
	g.Wait()

	// Sequential verification.
	cur := make([]float64, n*n)
	next := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cur[i*n+j] = init(i, j)
		}
	}
	at := func(a []float64, i, j int) float64 {
		if i < 0 || i >= n || j < 0 || j >= n {
			return 0
		}
		return a[i*n+j]
	}
	for s := 0; s < steps; s++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				next[i*n+j] = 0.25 * (at(cur, i-1, j) + at(cur, i+1, j) +
					at(cur, i, j-1) + at(cur, i, j+1))
			}
		}
		cur, next = next, cur
	}
	maxErr := 0.0
	var total float64
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			blk := final[bi][bj]
			for i := 0; i < b; i++ {
				for j := 0; j < b; j++ {
					got := blk[(i+1)*stride+(j+1)]
					want := cur[(bi*b+i)*n+bj*b+j]
					total += got
					if e := math.Abs(got - want); e > maxErr {
						maxErr = e
					}
				}
			}
		}
	}
	fmt.Printf("heat: n=%d blocks=%dx%d steps=%d  total heat %.3f  max err vs sequential = %.3g\n",
		n, nb, nb, steps, total, maxErr)
	if maxErr > 1e-9 {
		panic("TTG heat diverges from the sequential sweep")
	}
	fmt.Println("verified ✓")
}
