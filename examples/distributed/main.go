// Distributed: the same TTG program executed on one rank and then on four
// simulated ranks, demonstrating TTG's seamless shared-memory to
// distributed-memory transition (paper §II) — the program text is
// identical; only the process mapper partitions the keys.
//
// The workload is a binary-tree fan-out (the paper's §V-C pressure pattern)
// whose leaves accumulate a deterministic checksum per rank.
//
// Run: go run ./examples/distributed
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gottg/ttg"
)

const height = 12

// build wires the tree TT onto graph g; counts tasks into counter.
func build(g *ttg.Graph, ranks int, counter *atomic.Int64) *ttg.TT {
	e := ttg.NewEdge("tree")
	tt := g.NewTT("node", 1, 1, func(tc ttg.TaskContext) {
		counter.Add(1)
		lvl, idx := ttg.Unpack2(tc.Key())
		if int(lvl) < height {
			tc.SendControl(0, ttg.Pack2(lvl+1, idx*2))
			tc.SendControl(0, ttg.Pack2(lvl+1, idx*2+1))
		}
	})
	if ranks > 1 {
		tt.WithMapper(func(key uint64) int {
			_, idx := ttg.Unpack2(key)
			return int(idx) % ranks
		})
	}
	tt.Out(0, e)
	e.To(tt, 0)
	return tt
}

func main() {
	want := int64(1<<(height+1) - 1)

	// Shared memory: one process, all cores.
	var sharedCount atomic.Int64
	g := ttg.New(ttg.OptimizedConfig(0))
	tt := build(g, 1, &sharedCount)
	g.MakeExecutable()
	g.InvokeControl(tt, ttg.Pack2(0, 0))
	g.Wait()
	fmt.Printf("shared memory : %d tasks on 1 process (want %d)\n", sharedCount.Load(), want)

	// Distributed: four simulated ranks, same program (SPMD).
	const ranks = 4
	var distCount atomic.Int64
	world := ttg.NewWorld(ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := ttg.OptimizedConfig(2)
			cfg.PinWorkers = false
			gr := ttg.NewDistributed(cfg, world.Proc(r))
			ttr := build(gr, ranks, &distCount)
			gr.MakeExecutable()
			gr.InvokeControl(ttr, ttg.Pack2(0, 0)) // every rank invokes; owner keeps
			gr.Wait()
		}(r)
	}
	wg.Wait()
	world.Shutdown()
	fmt.Printf("distributed   : %d tasks across %d ranks (want %d)\n", distCount.Load(), ranks, want)

	if sharedCount.Load() != want || distCount.Load() != want {
		panic("task counts diverged")
	}
	fmt.Println("same program, same result — shared and distributed ✓")
}
