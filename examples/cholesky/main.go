// Cholesky: tiled Cholesky factorization A = L·Lᵀ expressed as a TTG data
// flow — the classic PaRSEC/TTG showcase. Tiles flow between four template
// tasks (POTRF, TRSM, SYRK, GEMM); priorities steer execution along the
// critical path (lower panel index first), exactly the use case the LLP
// scheduler's priority support exists for (paper §IV-C).
//
//	POTRF(k):    A[k][k] -> L[k][k]            (after k SYRK updates)
//	TRSM(m,k):   A[m][k], L[k][k] -> L[m][k]   (after k GEMM updates)
//	SYRK(m,k):   A[m][m] -= L[m][k]·L[m][k]ᵀ
//	GEMM(m,n,k): A[m][n] -= L[m][k]·L[n][k]ᵀ
//
// Run: go run ./examples/cholesky [-n 256] [-b 32] [-threads 0]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"gottg/ttg"
)

// tile is a b×b row-major block, flowing through the graph by reference
// (TTG move semantics transfer ownership along the chain of its writers).
type tile struct {
	b int
	a []float64
}

func newTile(b int) *tile { return &tile{b: b, a: make([]float64, b*b)} }

// potrf factors t in place: t = chol(t) (lower).
func potrf(t *tile) {
	b := t.b
	for j := 0; j < b; j++ {
		d := t.a[j*b+j]
		for k := 0; k < j; k++ {
			d -= t.a[j*b+k] * t.a[j*b+k]
		}
		if d <= 0 {
			panic("matrix not positive definite")
		}
		d = math.Sqrt(d)
		t.a[j*b+j] = d
		for i := j + 1; i < b; i++ {
			s := t.a[i*b+j]
			for k := 0; k < j; k++ {
				s -= t.a[i*b+k] * t.a[j*b+k]
			}
			t.a[i*b+j] = s / d
		}
		for k := j + 1; k < b; k++ {
			t.a[j*b+k] = 0
		}
	}
}

// trsm solves X·Lᵀ = A in place: a = a·L⁻ᵀ (L lower from potrf).
func trsm(l, a *tile) {
	b := a.b
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			s := a.a[i*b+j]
			for k := 0; k < j; k++ {
				s -= a.a[i*b+k] * l.a[j*b+k]
			}
			a.a[i*b+j] = s / l.a[j*b+j]
		}
	}
}

// syrk updates c -= l·lᵀ (we keep the full tile; only lower is used later).
func syrk(l, c *tile) {
	b := c.b
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			s := 0.0
			for k := 0; k < b; k++ {
				s += l.a[i*b+k] * l.a[j*b+k]
			}
			c.a[i*b+j] -= s
		}
	}
}

// gemm updates c -= a·bᵀ.
func gemm(a, bb, c *tile) {
	n := c.b
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += a.a[i*n+k] * bb.a[j*n+k]
			}
			c.a[i*n+j] -= s
		}
	}
}

func main() {
	nFlag := flag.Int("n", 256, "matrix dimension")
	bFlag := flag.Int("b", 32, "tile size")
	tFlag := flag.Int("threads", 0, "worker threads (0 = one per CPU)")
	flag.Parse()
	n, b := *nFlag, *bFlag
	if n%b != 0 {
		fmt.Fprintln(os.Stderr, "n must be a multiple of b")
		os.Exit(2)
	}
	nt := n / b // tiles per dimension

	// Build a symmetric positive definite matrix A = M·Mᵀ + n·I.
	orig := make([]float64, n*n)
	rng := uint64(7)
	next := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return float64(rng%1000)/1000 - 0.5
	}
	m := make([]float64, n*n)
	for i := range m {
		m[i] = next()
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += m[i*n+k] * m[j*n+k]
			}
			if i == j {
				s += float64(n)
			}
			orig[i*n+j] = s
		}
	}

	// Cut A into tiles; result tiles are collected here as they finalize.
	tiles := make([][]*tile, nt)
	result := make([][]*tile, nt)
	for i := range tiles {
		tiles[i] = make([]*tile, nt)
		result[i] = make([]*tile, nt)
		for j := range tiles[i] {
			t := newTile(b)
			for ii := 0; ii < b; ii++ {
				copy(t.a[ii*b:(ii+1)*b], orig[(i*b+ii)*n+j*b:(i*b+ii)*n+j*b+b])
			}
			tiles[i][j] = t
		}
	}

	// ---- the TTG graph ----
	g := ttg.New(ttg.OptimizedConfig(*tFlag))

	ePotrfIn := ttg.NewEdge("potrf.in")  // diagonal tile ready for POTRF(k)
	eL := ttg.NewEdge("Lkk")             // POTRF result to TRSM
	eTrsmIn := ttg.NewEdge("trsm.in")    // panel tile ready for TRSM(m,k)
	eLmkSyrk := ttg.NewEdge("Lmk.syrk")  // TRSM result to SYRK
	eLmkGemmA := ttg.NewEdge("Lmk.gemm") // TRSM result to GEMM (row factor)
	eLnkGemmB := ttg.NewEdge("Lnk.gemm") // TRSM result to GEMM (col factor)
	eSyrkIn := ttg.NewEdge("syrk.in")    // diagonal tile between SYRK steps
	eGemmIn := ttg.NewEdge("gemm.in")    // interior tile between GEMM steps

	kOf := func(key uint64) uint32 { _, k := ttg.Unpack2(key); return k }

	potrfTT := g.NewTT("POTRF", 1, 1, func(tc ttg.TaskContext) {
		k := tc.Key()
		t := tc.Value(0).(*tile)
		potrf(t)
		result[k][k] = t
		for mm := k + 1; mm < uint64(nt); mm++ {
			// Share L[k][k] read-only with every TRSM in the panel.
			tc.SendInput(0, ttg.Pack2(uint32(mm), uint32(k)), 0)
		}
	}).WithPriority(func(key uint64) int32 { return 1 << 20 }) // critical path first

	trsmTT := g.NewTT("TRSM", 2, 3, func(tc ttg.TaskContext) {
		mm, k := ttg.Unpack2(tc.Key())
		l := tc.Value(0).(*tile)
		a := tc.Value(1).(*tile)
		trsm(l, a)
		result[mm][k] = a
		// L[m][k] updates the diagonal via SYRK(m,k)...
		tc.SendInput(0, tc.Key(), 1)
		// ...and interior tiles via GEMM: as row factor for (m, nn>k..<m)
		for nn := k + 1; nn < mm; nn++ {
			tc.SendInput(1, ttg.Pack3(uint16(mm), uint32(nn), uint32(k)), 1)
		}
		// ...and as column factor for (mm2 > m, m)
		for mm2 := mm + 1; mm2 < uint32(nt); mm2++ {
			tc.SendInput(2, ttg.Pack3(uint16(mm2), uint32(mm), uint32(k)), 1)
		}
	}).WithPriority(func(key uint64) int32 { return 1<<19 - int32(kOf(key)) })

	syrkTT := g.NewTT("SYRK", 2, 2, func(tc ttg.TaskContext) {
		mm, k := ttg.Unpack2(tc.Key())
		l := tc.Value(0).(*tile)
		c := tc.Value(1).(*tile)
		syrk(l, c)
		if k+1 == mm {
			tc.SendInput(0, uint64(mm), 1) // to POTRF(m)
		} else {
			tc.SendInput(1, ttg.Pack2(mm, k+1), 1) // next SYRK step
		}
	}).WithPriority(func(key uint64) int32 { return 1<<18 - int32(kOf(key)) })

	gemmTT := g.NewTT("GEMM", 3, 2, func(tc ttg.TaskContext) {
		m16, nn, k := ttg.Unpack3(tc.Key())
		mm := uint32(m16)
		a := tc.Value(0).(*tile)
		bb := tc.Value(1).(*tile)
		c := tc.Value(2).(*tile)
		gemm(a, bb, c)
		if k+1 == nn {
			tc.SendInput(0, ttg.Pack2(mm, nn), 2) // to TRSM(m,n)
		} else {
			tc.SendInput(1, ttg.Pack3(m16, nn, k+1), 2) // next GEMM step
		}
	})

	potrfTT.Out(0, eL)
	trsmTT.Out(0, eLmkSyrk).Out(1, eLmkGemmA).Out(2, eLnkGemmB)
	syrkTT.Out(0, ePotrfIn).Out(1, eSyrkIn)
	gemmTT.Out(0, eTrsmIn).Out(1, eGemmIn)
	ePotrfIn.To(potrfTT, 0)
	eL.To(trsmTT, 0)
	eTrsmIn.To(trsmTT, 1)
	eLmkSyrk.To(syrkTT, 0)
	eSyrkIn.To(syrkTT, 1)
	eLmkGemmA.To(gemmTT, 0)
	eLnkGemmB.To(gemmTT, 1)
	eGemmIn.To(gemmTT, 2)

	g.MakeExecutable()
	// Seed: diagonal tiles enter POTRF(0) or their first SYRK; panel tiles
	// enter TRSM(m,0) or their first GEMM.
	for i := 0; i < nt; i++ {
		for j := 0; j <= i; j++ {
			t := tiles[i][j]
			switch {
			case i == 0 && j == 0:
				g.Invoke(potrfTT, 0, t)
			case i == j:
				g.InvokeInput(syrkTT, 1, ttg.Pack2(uint32(i), 0), t)
			case j == 0:
				g.InvokeInput(trsmTT, 1, ttg.Pack2(uint32(i), 0), t)
			default:
				g.InvokeInput(gemmTT, 2, ttg.Pack3(uint16(i), uint32(j), 0), t)
			}
		}
	}
	g.Wait()

	// Verify: max |(L·Lᵀ − A)[i][j]| over the lower triangle.
	maxErr := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := 0.0
			for k := 0; k <= j; k++ {
				ti, tk := i/b, k/b
				tj := j / b
				lik := result[ti][tk].a[(i%b)*b+(k%b)]
				ljk := result[tj][tk].a[(j%b)*b+(k%b)]
				s += lik * ljk
			}
			if e := math.Abs(s - orig[i*n+j]); e > maxErr {
				maxErr = e
			}
		}
	}
	fmt.Printf("cholesky: n=%d b=%d tiles=%dx%d  max|L·Lᵀ−A| = %.3g\n", n, b, nt, nt, maxErr)
	if maxErr > 1e-8*float64(n) {
		panic("factorization incorrect")
	}
	fmt.Println("factorization verified ✓")
}
